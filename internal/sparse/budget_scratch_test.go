package sparse

import (
	"errors"
	"math/rand"
	"testing"
)

// Regression tests for the budgetcheck sweep: row-scaled stitch tables and
// grid-scaled plan tables used to be allocated without a budget charge, so
// a tall or finely-gridded product could blow far past the configured
// memory limit while every metered allocation stayed tiny. Each test pins
// one fixed site: a budget sized to fit the worker scratch but not the
// newly charged table must now refuse with ErrBudget, and a generous
// budget must still produce the exact flat-kernel result.

// tallThin builds a rows×8 matrix with one entry per row, so the worker
// SPA scratch is a few dozen bytes while the rows-scaled stitch table is
// rows*8 bytes.
func tallThin(rows int) *CSR[int] {
	out := NewCSR[int](rows, 8)
	for i := 0; i < rows; i++ {
		out.Ind = append(out.Ind, i%8)
		out.Val = append(out.Val, 1+i%3)
		out.Ptr[i+1] = len(out.Ind)
	}
	return out
}

func TestSpGEMMStitchTableIsBudgeted(t *testing.T) {
	a := tallThin(10000)
	b := randCSR(rand.New(rand.NewSource(1)), 8, 8, 0.5)
	mul := func(x, y int) int { return x * y }
	add := func(x, y int) int { return x + y }

	// 4 KiB fits the 8-column SPA many times over but not the 80 KB
	// row-length table; before the charge landed this call succeeded.
	small := NewBudget(4096).Tx()
	if _, err := SpGEMMKernelEx(a, b, mul, add, Mask{}, Exec{Threads: 1, Tx: small}, KernelAuto); !errors.Is(err, ErrBudget) {
		t.Fatalf("SpGEMMKernelEx under a 4KiB budget: err = %v, want ErrBudget", err)
	}

	big := NewBudget(1 << 20).Tx()
	got, err := SpGEMMKernelEx(a, b, mul, add, Mask{}, Exec{Threads: 1, Tx: big}, KernelAuto)
	if err != nil {
		t.Fatalf("SpGEMMKernelEx under a 1MiB budget: %v", err)
	}
	identicalCSR(t, "budgeted spgemm", got, SpGEMM(a, b, mul, add, Mask{}, 1))
}

func TestMonoSpGEMMStitchTableIsBudgeted(t *testing.T) {
	rows := 10000
	a := NewCSR[float64](rows, 8)
	for i := 0; i < rows; i++ {
		a.Ind = append(a.Ind, i%8)
		a.Val = append(a.Val, float64(1+i%3))
		a.Ptr[i+1] = len(a.Ind)
	}
	b := sprayCSR(rand.New(rand.NewSource(2)), 8, 8, 32, func(r *rand.Rand) float64 { return float64(1 + r.Intn(5)) })
	mul := func(x, y float64) float64 { return x * y }
	add := func(x, y float64) float64 { return x + y }

	small := NewBudget(4096).Tx()
	_, handled, err := monoSpGEMMDispatch(SemiPlusTimes, a, b, mul, add, Mask{}, Exec{Threads: 1, Tx: small}, KernelAuto)
	if !handled {
		t.Fatal("monoSpGEMMDispatch did not take the float64 plus-times family")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("monomorphized product under a 4KiB budget: err = %v, want ErrBudget", err)
	}

	big := NewBudget(1 << 20).Tx()
	got, handled, err := monoSpGEMMDispatch(SemiPlusTimes, a, b, mul, add, Mask{}, Exec{Threads: 1, Tx: big}, KernelAuto)
	if !handled || err != nil {
		t.Fatalf("monomorphized product under a 1MiB budget: handled=%v err=%v", handled, err)
	}
	identicalCSR(t, "budgeted mono spgemm", got, SpGEMM(a, b, mul, add, Mask{}, 1))
}

func TestBlockedPlanTablesAreBudgeted(t *testing.T) {
	// Empty operands over a 32×32 grid: every tile task used to early-out
	// before any charge, so the 1024-task plan tables were entirely
	// unmetered and a 1KiB budget sailed through.
	a := NewCSR[int](512, 512)
	b := NewCSR[int](512, 512)
	ab := a.BlockedView(32, 32)
	bb := b.BlockedView(32, 32)
	mul := func(x, y int) int { return x * y }
	add := func(x, y int) int { return x + y }
	prod := closureTileRows(mul, add)

	small := NewBudget(1024).Tx()
	if _, err := blockedSpGEMM(ab, bb, mul, add, Mask{}, Exec{Threads: 2, Tx: small}, KernelAuto, prod); !errors.Is(err, ErrBudget) {
		t.Fatalf("blockedSpGEMM under a 1KiB budget: err = %v, want ErrBudget", err)
	}

	big := NewBudget(1 << 20).Tx()
	got, err := blockedSpGEMM(ab, bb, mul, add, Mask{}, Exec{Threads: 2, Tx: big}, KernelAuto, prod)
	if err != nil {
		t.Fatalf("blockedSpGEMM under a 1MiB budget: %v", err)
	}
	if got.NNZ() != 0 || got.Rows != 512 || got.Cols != 512 {
		t.Fatalf("empty blocked product: %dx%d nnz=%d", got.Rows, got.Cols, got.NNZ())
	}
}

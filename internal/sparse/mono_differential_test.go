package sparse

import (
	"math/rand"
	"testing"
)

// Monomorphized≡closure differential battery: the specialized hot-semiring
// kernels (mono.go, monokernels.go) must produce output identical to the
// generic closure kernels — same pattern, same values compared with ==, so
// floating-point accumulation order must match bit for bit — across every
// hot semiring × block format × mask interpretation × direction × thread
// count. This harness is what makes the specialization shippable: any
// divergence (a reordered fold, a zero-init instead of first-assign, a mask
// admitted at the wrong point) fails here before it can ship.
//
// Seeds are logged; rerun a failure with GRB_DIFF_SEED=<seed>.

// sprayVec builds an n-vector holding ~n/oneIn random entries in ascending
// index order.
func sprayVec[T any](rng *rand.Rand, n, oneIn int, mk func(*rand.Rand) T) *Vec[T] {
	v := NewVec[T](n)
	for j := 0; j < n; j++ {
		if rng.Intn(oneIn) == 0 {
			v.Ind = append(v.Ind, j)
			v.Val = append(v.Val, mk(rng))
		}
	}
	return v
}

// fullVec builds a completely dense n-vector (every index present), the
// shape whose block view is the full (bitmap-free) dense format.
func fullVec[T any](rng *rand.Rand, n int, mk func(*rand.Rand) T) *Vec[T] {
	v := NewVec[T](n)
	for j := 0; j < n; j++ {
		v.Ind = append(v.Ind, j)
		v.Val = append(v.Val, mk(rng))
	}
	return v
}

// fullCSR builds a completely dense rows×cols matrix — with a full vector
// operand this is the GEMV fast-path regime.
func fullCSR[T any](rng *rand.Rand, rows, cols int, mk func(*rand.Rand) T) *CSR[T] {
	var I, J []int
	var X []T
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			I = append(I, i)
			J = append(J, j)
			X = append(X, mk(rng))
		}
	}
	m, err := BuildCSR(rows, cols, I, J, X, func(a, b T) T { return b })
	if err != nil {
		panic(err)
	}
	return m
}

// identicalVec fails unless got and want agree exactly on length, pattern
// and values (==, so float comparisons are exact).
func identicalVec[T comparable](t *testing.T, label string, got, want *Vec[T]) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil vector (got=%v want=%v)", label, got == nil, want == nil)
	}
	if got.N != want.N {
		t.Fatalf("%s: size %d != %d", label, got.N, want.N)
	}
	if len(got.Ind) != len(want.Ind) {
		t.Fatalf("%s: nnz %d != %d", label, len(got.Ind), len(want.Ind))
	}
	for k := range want.Ind {
		if got.Ind[k] != want.Ind[k] || got.Val[k] != want.Val[k] {
			t.Fatalf("%s: entry %d = (%d,%v), want (%d,%v)",
				label, k, got.Ind[k], got.Val[k], want.Ind[k], want.Val[k])
		}
	}
}

// vmaskVariants enumerates the vector-mask interpretations over the output
// dimension n: unmasked, value, structural, complemented and both.
func vmaskVariants(rng *rand.Rand, n int) []struct {
	name string
	mask VMask
} {
	mvec := sprayVec(rng, n, 2, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
	return []struct {
		name string
		mask VMask
	}{
		{"nomask", VMask{}},
		{"value", VMask{M: mvec}},
		{"structural", VMask{M: mvec, Structural: true}},
		{"complement", VMask{M: mvec, Complement: true}},
		{"structural-complement", VMask{M: mvec, Structural: true, Complement: true}},
	}
}

// vecFormats enumerates the block-format regimes of a frontier of length n:
// a sparse frontier (bitmap view), a full frontier (dense view), and a full
// frontier pinned to the bitmap format. Each variant builds a fresh vector
// because the view caches on the snapshot — a view materialized under one
// hint would otherwise serve the next.
func vecFormats[T any](rng *rand.Rand, n int, mk func(*rand.Rand) T) []struct {
	name string
	vec  *Vec[T]
	hint FormatHint
} {
	return []struct {
		name string
		vec  *Vec[T]
		hint FormatHint
	}{
		{"sparse-bitmap", sprayVec(rng, n, 4, mk), FormatHintAuto},
		{"full-dense", fullVec(rng, n, mk), FormatHintAuto},
		{"full-bitmap-pinned", fullVec(rng, n, mk), FormatHintBitmap},
	}
}

// diffMonoMxV sweeps the pull (SpMV) and push (VxM) products for one hot
// semiring over formats × masks × threads and requires the monomorphized
// and closure kernels to agree exactly.
func diffMonoMxV[T comparable](t *testing.T, rng *rand.Rand, semi Semi,
	mul, add func(T, T) T, mk func(*rand.Rand) T) {
	t.Helper()
	for trial := 0; trial < 6; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		a := sprayCSR(rng, rows, cols, 3*(rows+cols), mk)

		// Pull: frontier over cols, mask over rows.
		for _, fv := range vecFormats(rng, cols, mk) {
			prev := SetFormatHint(fv.hint)
			for _, mv := range vmaskVariants(rng, rows) {
				for _, threads := range []int{1, 4} {
					for _, hint := range []Kernel{KernelAuto, KernelDense} {
						mono, err := SpMVSemiEx(semi, SpecMono, a, fv.vec, mul, add, mv.mask, Exec{Threads: threads}, hint)
						if err != nil {
							t.Fatalf("pull mono %s/%s: %v", fv.name, mv.name, err)
						}
						clos, err := SpMVKernelEx(a, fv.vec, mul, add, mv.mask, Exec{Threads: threads}, hint)
						if err != nil {
							t.Fatalf("pull closure %s/%s: %v", fv.name, mv.name, err)
						}
						identicalVec(t, semi.String()+"/pull/"+fv.name+"/"+mv.name, mono, clos)
					}
				}
			}
			SetFormatHint(prev)
		}

		// Push: frontier over rows, mask over cols.
		for _, fv := range vecFormats(rng, rows, mk) {
			prev := SetFormatHint(fv.hint)
			for _, mv := range vmaskVariants(rng, cols) {
				for _, threads := range []int{1, 4} {
					mono, err := VxMSemiEx(semi, SpecMono, fv.vec, a, mul, add, mv.mask, Exec{Threads: threads})
					if err != nil {
						t.Fatalf("push mono %s/%s: %v", fv.name, mv.name, err)
					}
					clos, err := VxMEx(fv.vec, a, mul, add, mv.mask, Exec{Threads: threads})
					if err != nil {
						t.Fatalf("push closure %s/%s: %v", fv.name, mv.name, err)
					}
					identicalVec(t, semi.String()+"/push/"+fv.name+"/"+mv.name, mono, clos)
				}
			}
			SetFormatHint(prev)
		}
	}
}

// diffMonoSpGEMM sweeps the matrix product for one hot semiring over masks
// × accumulator hints × threads; the hash hint exercises the fallback path,
// which must agree too (it runs the identical closures).
func diffMonoSpGEMM[T comparable](t *testing.T, rng *rand.Rand, semi Semi,
	mul, add func(T, T) T, mk func(*rand.Rand) T) {
	t.Helper()
	for trial := 0; trial < 6; trial++ {
		m := 1 + rng.Intn(30)
		k := 1 + rng.Intn(30)
		n := 1 + rng.Intn(30)
		if trial%2 == 1 {
			n = 400 + rng.Intn(1500) // wide outputs: the hash SPA's regime
		}
		a := sprayCSR(rng, m, k, 2*(m+k), mk)
		b := sprayCSR(rng, k, n, 2*(k+n), mk)
		maskM := sprayCSR(rng, m, n, (m*n)/3+1, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
		for _, mv := range maskVariants(maskM) {
			for _, threads := range []int{1, 4} {
				for _, hint := range []Kernel{KernelAuto, KernelDense, KernelHash} {
					mono, err := SpGEMMSemiEx(semi, SpecMono, a, b, mul, add, mv.mask, Exec{Threads: threads}, hint)
					if err != nil {
						t.Fatalf("mxm mono %s: %v", mv.name, err)
					}
					clos, err := SpGEMMKernelEx(a, b, mul, add, mv.mask, Exec{Threads: threads}, hint)
					if err != nil {
						t.Fatalf("mxm closure %s: %v", mv.name, err)
					}
					identicalCSR(t, semi.String()+"/mxm/"+mv.name, mono, clos)
				}
			}
		}
	}
}

// diffMonoAll runs every kernel family for one semiring × element type and
// then asserts the monomorphized path actually engaged — a silent fallback
// would make the whole battery vacuous.
func diffMonoAll[T comparable](t *testing.T, rng *rand.Rand, semi Semi,
	mul, add func(T, T) T, mk func(*rand.Rand) T) {
	t.Helper()
	ResetKernelCounts()
	diffMonoMxV(t, rng, semi, mul, add, mk)
	diffMonoSpGEMM(t, rng, semi, mul, add, mk)
	if mono, _ := MonoCounts(); mono == 0 {
		t.Fatalf("%s: monomorphized kernels never engaged — battery is vacuous", semi)
	}
}

// The op closures mirror the root package's semiring tables (ops.go)
// exactly, tie behaviour included: Min returns its first argument on ties,
// matching the mono loops' keep-accumulator compare.

func monoMin[T int64 | float64](x, y T) T {
	if y < x {
		return y
	}
	return x
}

func TestMonoDifferentialPlusTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffMonoAll(t, rng, SemiPlusTimes,
		func(a, b int64) int64 { return a * b },
		func(a, b int64) int64 { return a + b },
		func(r *rand.Rand) int64 { return int64(r.Intn(19) - 9) })
	diffMonoAll(t, rng, SemiPlusTimes,
		func(a, b float64) float64 { return a * b },
		func(a, b float64) float64 { return a + b },
		func(r *rand.Rand) float64 { return r.NormFloat64() })
}

func TestMonoDifferentialMinPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffMonoAll(t, rng, SemiMinPlus,
		func(a, b int64) int64 { return a + b },
		monoMin[int64],
		func(r *rand.Rand) int64 { return int64(r.Intn(1000)) })
	diffMonoAll(t, rng, SemiMinPlus,
		func(a, b float64) float64 { return a + b },
		monoMin[float64],
		func(r *rand.Rand) float64 { return r.Float64() * 100 })
}

func TestMonoDifferentialLorLand(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffMonoAll(t, rng, SemiLorLand,
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a || b },
		func(r *rand.Rand) bool { return r.Intn(3) > 0 })
}

func TestMonoDifferentialPlusPair(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffMonoAll(t, rng, SemiPlusPair,
		func(a, b int64) int64 { return 1 },
		func(a, b int64) int64 { return a + b },
		func(r *rand.Rand) int64 { return int64(r.Intn(100)) })
	diffMonoAll(t, rng, SemiPlusPair,
		func(a, b float64) float64 { return 1 },
		func(a, b float64) float64 { return a + b },
		func(r *rand.Rand) float64 { return r.NormFloat64() })
}

// TestMonoDifferentialGEMV pins the fully-dense regime: a full matrix times
// a full vector takes the GEMV fast path (both operands through their block
// views), which must still match the closure kernel product for product.
func TestMonoDifferentialGEMV(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	for trial := 0; trial < 4; trial++ {
		rows := 1 + rng.Intn(24)
		cols := 1 + rng.Intn(24)
		a := fullCSR(rng, rows, cols, func(r *rand.Rand) float64 { return r.NormFloat64() })
		u := fullVec(rng, cols, func(r *rand.Rand) float64 { return r.NormFloat64() })
		mul := func(a, b float64) float64 { return a * b }
		add := func(a, b float64) float64 { return a + b }
		for _, mv := range vmaskVariants(rng, rows) {
			for _, threads := range []int{1, 4} {
				mono, err := SpMVSemiEx(SemiPlusTimes, SpecMono, a, u, mul, add, mv.mask, Exec{Threads: threads}, KernelAuto)
				if err != nil {
					t.Fatalf("gemv mono %s: %v", mv.name, err)
				}
				clos, err := SpMVKernelEx(a, u, mul, add, mv.mask, Exec{Threads: threads}, KernelAuto)
				if err != nil {
					t.Fatalf("gemv closure %s: %v", mv.name, err)
				}
				identicalVec(t, "gemv/"+mv.name, mono, clos)
			}
		}
	}
}

// TestMonoRoutingGates pins the negative routing space: the sparse format
// hint disables specialization globally, SpecGeneric disables it per call,
// and named element types (distinct Go types over a hot underlying type)
// never match the monomorphized instantiations.
func TestMonoRoutingGates(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	mul := func(a, b float64) float64 { return a * b }
	add := func(a, b float64) float64 { return a + b }
	a := sprayCSR(rng, 20, 20, 60, func(r *rand.Rand) float64 { return r.NormFloat64() })
	u := fullVec(rng, 20, func(r *rand.Rand) float64 { return r.NormFloat64() })

	// FormatHintSparse: every SemiEx call falls back to closures.
	prev := SetFormatHint(FormatHintSparse)
	ResetKernelCounts()
	if _, err := SpMVSemiEx(SemiPlusTimes, SpecAuto, a, u, mul, add, VMask{}, Exec{Threads: 2}, KernelAuto); err != nil {
		t.Fatal(err)
	}
	if mono, closure := MonoCounts(); mono != 0 || closure == 0 {
		t.Fatalf("FormatHintSparse: mono=%d closure=%d, want 0/>0", mono, closure)
	}
	SetFormatHint(prev)

	// SpecGeneric: same, per call.
	ResetKernelCounts()
	if _, err := SpMVSemiEx(SemiPlusTimes, SpecGeneric, a, u, mul, add, VMask{}, Exec{Threads: 2}, KernelAuto); err != nil {
		t.Fatal(err)
	}
	if mono, closure := MonoCounts(); mono != 0 || closure == 0 {
		t.Fatalf("SpecGeneric: mono=%d closure=%d, want 0/>0", mono, closure)
	}

	// Named types: *CSR[myF] is not *CSR[float64], so the dispatch cannot
	// narrow it; the closure kernel serves it with correct results.
	type myF float64
	am := sprayCSR(rng, 16, 16, 40, func(r *rand.Rand) myF { return myF(r.Intn(9)) })
	um := fullVec(rng, 16, func(r *rand.Rand) myF { return myF(r.Intn(9)) })
	mulM := func(a, b myF) myF { return a * b }
	addM := func(a, b myF) myF { return a + b }
	ResetKernelCounts()
	got, err := SpMVSemiEx(SemiPlusTimes, SpecMono, am, um, mulM, addM, VMask{}, Exec{Threads: 2}, KernelAuto)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SpMVKernelEx(am, um, mulM, addM, VMask{}, Exec{Threads: 2}, KernelAuto)
	if err != nil {
		t.Fatal(err)
	}
	identicalVec(t, "named-type", got, want)
	if mono, _ := MonoCounts(); mono != 0 {
		t.Fatalf("named element type reached a monomorphized kernel (mono=%d)", mono)
	}
}

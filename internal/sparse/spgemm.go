package sparse

import (
	"sort"

	"github.com/grblas/grb/internal/parallel"
)

// SpGEMM computes T = A ·(⊕,⊗) B over an arbitrary semiring using
// Gustavson's row-wise algorithm with adaptive kernel selection
// (SpGEMMKernel with KernelAuto).
func SpGEMM[A, B, C any](a *CSR[A], b *CSR[B], mul func(A, B) C, add func(C, C) C, mask Mask, threads int) *CSR[C] {
	return SpGEMMKernel(a, b, mul, add, mask, threads, KernelAuto)
}

// SpGEMMKernel computes T = A ·(⊕,⊗) B over an arbitrary semiring using
// Gustavson's row-wise algorithm with a per-worker sparse accumulator (SPA).
//
// A cheap symbolic pass (SpGEMMFlops) first computes per-row flop upper
// bounds. Rows of A are then partitioned by *flop* balance — not nnz(A)
// balance — across up to `threads` workers, so a single skewed row no longer
// serializes a worker. Each row range picks its accumulator independently:
//
//   - dense SPA: a width-B.Cols value buffer reused across rows via
//     generation stamps. O(B.Cols) scratch per worker, O(1) per product.
//   - hash SPA: an open-addressing table presized from the row's flop bound.
//     O(maxRowFlops) scratch per worker — the hypersparse-regime kernel, for
//     when B.Cols dwarfs the work the whole range actually does.
//
// With hint KernelAuto a range is routed by chooseHash (the range's total
// flop estimate vs. B.Cols with the package threshold); KernelDense/
// KernelHash pin the choice, which is what the differential tests and
// benchmarks use. The hash table is presized from the heaviest row's bound,
// so it never rehashes mid-row.
//
// Both accumulators visit products in identical (k, t) order and sort each
// row's pattern before emitting, so their outputs are identical down to
// floating-point rounding — the property the differential harness asserts.
//
// If mask.M is non-nil (or mask.Complement is set), output entries are
// filtered at emit time: only positions admitted by the mask are stored.
// This is the "masked SpGEMM" used by e.g. Sandia triangle counting; it
// prunes memory (and the sort) even though products are still formed.
//
// SpGEMMKernel is the unhardened compatibility form: it delegates to
// SpGEMMKernelEx with a zero execution environment (no budget, no
// cancellation) and re-panics on the errors only injected faults could then
// produce, so pre-hardening callers and tests see the old signature.
func SpGEMMKernel[A, B, C any](a *CSR[A], b *CSR[B], mul func(A, B) C, add func(C, C) C, mask Mask, threads int, hint Kernel) *CSR[C] {
	out, err := SpGEMMKernelEx(a, b, mul, add, mask, Exec{Threads: threads}, hint)
	if err != nil {
		panic(err)
	}
	return out
}

// SpGEMMKernelEx is the hardened SpGEMM: identical algorithm and output, with
// the execution environment threaded through every allocation and range
// boundary. Degradation order under memory pressure: halve workers (fewer
// concurrently-live accumulators), then prefer the hash SPA over the dense
// one per range when the dense workspace no longer fits, and only when even
// the cheapest route cannot be charged does it return ErrBudget. A panic
// anywhere inside — worker goroutines included — comes back as an error, not
// a crash.
func SpGEMMKernelEx[A, B, C any](a *CSR[A], b *CSR[B], mul func(A, B) C, add func(C, C) C, mask Mask, e Exec, hint Kernel) (out *CSR[C], err error) {
	defer recoverExec(&err)
	threads := e.threads()
	fptr := SpGEMMFlops(a, b, threads)
	slot := slotBytes[C]()
	denseBytes := int64(b.Cols) * slot
	if e.Tx != nil && threads > 1 {
		// Per-worker scratch lower bound: whichever accumulator is cheaper for
		// the heaviest row (the hash table is sized from it).
		maxRow := 0
		for i := 0; i < a.Rows; i++ {
			if f := fptr[i+1] - fptr[i]; f > maxRow {
				maxRow = f
			}
		}
		per := denseBytes
		if hb := int64(hashCapacity(maxRow)) * slot; hb < per {
			per = hb
		}
		threads = degradeThreads(e, threads, per)
	}
	out = NewCSR[C](a.Rows, b.Cols)
	parts := parallel.BalancedRanges(a.Rows, threads, fptr)
	nparts := len(parts) - 1
	notePartSpan(parts, fptr, threads)
	pInd := make([][]int, nparts)
	pVal := make([][]C, nparts)
	// The stitch row-length table scales with the output rows, so it is
	// metered like worker scratch.
	if cerr := e.charge(siteSpGEMMDense, int64(a.Rows)*8); cerr != nil {
		return nil, cerr
	}
	rowLen := make([]int, a.Rows)
	masked := mask.M != nil || mask.Complement
	parallel.Run(parts, threads, func(part, lo, hi int) {
		e.checkpoint()
		rangeFlops := fptr[hi] - fptr[lo]
		maxFlops := 0
		for i := lo; i < hi; i++ {
			if f := fptr[i+1] - fptr[i]; f > maxFlops {
				maxFlops = f
			}
		}
		var ind []int
		var val []C
		pattern := make([]int, 0, 256)
		// admit reports whether the mask passes position j of row i, using a
		// per-row cursor; pattern is sorted, so the cursor only advances.
		var mInd []int
		var mVal []bool
		mk := 0
		admit := func(j int) bool {
			mt := maskTest(mInd, mVal, mask.Structural, j, &mk)
			if mask.Complement {
				mt = !mt
			}
			return mt
		}
		useHash := chooseHash(hint, rangeFlops, b.Cols)
		hashBytes := int64(hashCapacity(maxFlops)) * slot
		if !useHash && e.Tx != nil && !e.Tx.Fits(denseBytes) && hashBytes < denseBytes {
			// Budget degradation: the dense workspace no longer fits but the
			// (smaller) hash table might — route this range to the hash SPA.
			useHash = true
			budgetDegrades.Add(1)
		}
		if useHash {
			hashRanges.Add(1)
			e.mustCharge(siteSpGEMMHash, hashBytes)
			var h hashAccum[C]
			h.ensure(maxFlops)
			for i := lo; i < hi; i++ {
				pattern = pattern[:0]
				aInd, aVal := a.Row(i)
				for k := range aInd {
					bInd, bVal := b.Row(aInd[k])
					av := aVal[k]
					for t := range bInd {
						j := bInd[t]
						p := mul(av, bVal[t])
						s := h.slot(j)
						if h.keys[s] == -1 {
							h.keys[s] = j
							h.vals[s] = p
							h.slots = append(h.slots, s)
							pattern = append(pattern, j)
						} else {
							h.vals[s] = add(h.vals[s], p)
						}
					}
				}
				sort.Ints(pattern)
				start := len(ind)
				if masked {
					if mask.M != nil {
						mInd, mVal = mask.M.Row(i)
					}
					mk = 0
					for _, j := range pattern {
						if admit(j) {
							ind = append(ind, j)
							val = append(val, h.vals[h.slot(j)])
						}
					}
				} else {
					for _, j := range pattern {
						ind = append(ind, j)
						val = append(val, h.vals[h.slot(j)])
					}
				}
				rowLen[i] = len(ind) - start
				h.reset()
			}
		} else {
			denseRanges.Add(1)
			e.mustCharge(siteSpGEMMDense, denseBytes)
			spa := make([]C, b.Cols)
			stamp := make([]int, b.Cols) // generation marks; row i+1 is generation i+1
			scratchBytes.Add(denseBytes)
			for i := lo; i < hi; i++ {
				gen := i + 1
				pattern = pattern[:0]
				aInd, aVal := a.Row(i)
				for k := range aInd {
					bInd, bVal := b.Row(aInd[k])
					av := aVal[k]
					for t := range bInd {
						j := bInd[t]
						p := mul(av, bVal[t])
						if stamp[j] != gen {
							stamp[j] = gen
							spa[j] = p
							pattern = append(pattern, j)
						} else {
							spa[j] = add(spa[j], p)
						}
					}
				}
				sort.Ints(pattern)
				start := len(ind)
				if masked {
					if mask.M != nil {
						mInd, mVal = mask.M.Row(i)
					}
					mk = 0
					for _, j := range pattern {
						if admit(j) {
							ind = append(ind, j)
							val = append(val, spa[j])
						}
					}
				} else {
					for _, j := range pattern {
						ind = append(ind, j)
						val = append(val, spa[j])
					}
				}
				rowLen[i] = len(ind) - start
			}
		}
		pInd[part] = ind
		pVal[part] = val
	})
	installStitched(out, parts, pInd, pVal, rowLen)
	return out, nil
}

// CheckedMul returns x*y and whether the product is representable (no signed
// overflow). Shapes and nnz counts are nonnegative, so a negative product
// always means wraparound.
func CheckedMul(x, y int) (int, bool) {
	if x == 0 || y == 0 {
		return 0, true
	}
	p := x * y
	if p/y != x || p < 0 {
		return 0, false
	}
	return p, true
}

// Kron computes the Kronecker product T = A ⊗kron B with the given multiply
// operator: T is (A.Rows*B.Rows) × (A.Cols*B.Cols) and
// T(i*Br+k, j*Bc+l) = mul(A(i,j), B(k,l)) for every pair of stored entries.
// If the output shape or entry count overflows the int range, it returns
// ErrTooLarge before allocating anything (the grb layer maps this onto
// GrB_OUT_OF_MEMORY). A panic inside the fan-out (a faulty multiply
// operator) parks as an error instead of crossing the API boundary.
func Kron[A, B, C any](a *CSR[A], b *CSR[B], mul func(A, B) C, threads int) (out *CSR[C], err error) {
	defer recoverExec(&err)
	rows, okR := CheckedMul(a.Rows, b.Rows)
	cols, okC := CheckedMul(a.Cols, b.Cols)
	nnz, okN := CheckedMul(a.NNZ(), b.NNZ())
	if !okR || !okC || !okN {
		return nil, ErrTooLarge
	}
	out = NewCSR[C](rows, cols)
	if nnz == 0 {
		return out, nil
	}
	out.Ind = make([]int, nnz)
	out.Val = make([]C, nnz)
	// Row (ia*b.Rows + ib) holds nnz(A row ia) * nnz(B row ib) entries.
	for i := 0; i < rows; i++ {
		ia, ib := i/b.Rows, i%b.Rows
		out.Ptr[i+1] = out.Ptr[i] + (a.Ptr[ia+1]-a.Ptr[ia])*(b.Ptr[ib+1]-b.Ptr[ib])
	}
	parallel.For(rows, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ia, ib := i/b.Rows, i%b.Rows
			aInd, aVal := a.Row(ia)
			bInd, bVal := b.Row(ib)
			p := out.Ptr[i]
			for k := range aInd {
				base := aInd[k] * b.Cols
				for t := range bInd {
					out.Ind[p] = base + bInd[t]
					out.Val[p] = mul(aVal[k], bVal[t])
					p++
				}
			}
		}
	})
	return out, nil
}

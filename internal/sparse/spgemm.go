package sparse

import (
	"sort"

	"github.com/grblas/grb/internal/parallel"
)

// SpGEMM computes T = A ·(⊕,⊗) B over an arbitrary semiring using
// Gustavson's row-wise algorithm with a per-worker sparse accumulator (SPA).
// Rows of A are partitioned by nnz balance across up to `threads` workers;
// each worker owns a dense accumulator of width B.Cols that is reused across
// its rows via generation stamps, so the cost per row is proportional to the
// flops of that row, not to B.Cols.
//
// If mask.M is non-nil (or mask.Complement is set), output entries are
// filtered at emit time: only positions admitted by the mask are stored.
// This is the "masked SpGEMM" used by e.g. Sandia triangle counting; it
// prunes memory (and the sort) even though products are still formed.
func SpGEMM[A, B, C any](a *CSR[A], b *CSR[B], mul func(A, B) C, add func(C, C) C, mask Mask, threads int) *CSR[C] {
	out := NewCSR[C](a.Rows, b.Cols)
	parts := parallel.BalancedRanges(a.Rows, threads, a.Ptr)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]C, nparts)
	rowLen := make([]int, a.Rows)
	masked := mask.M != nil || mask.Complement
	parallel.Run(parts, threads, func(part, lo, hi int) {
		spa := make([]C, b.Cols)
		stamp := make([]int, b.Cols) // generation marks; row i+1 is generation i+1
		pattern := make([]int, 0, 256)
		var ind []int
		var val []C
		for i := lo; i < hi; i++ {
			gen := i + 1
			pattern = pattern[:0]
			aInd, aVal := a.Row(i)
			for k := range aInd {
				bInd, bVal := b.Row(aInd[k])
				av := aVal[k]
				for t := range bInd {
					j := bInd[t]
					p := mul(av, bVal[t])
					if stamp[j] != gen {
						stamp[j] = gen
						spa[j] = p
						pattern = append(pattern, j)
					} else {
						spa[j] = add(spa[j], p)
					}
				}
			}
			sort.Ints(pattern)
			start := len(ind)
			if masked {
				var mInd []int
				var mVal []bool
				if mask.M != nil {
					mInd, mVal = mask.M.Row(i)
				}
				mk := 0
				for _, j := range pattern {
					mt := maskTest(mInd, mVal, mask.Structural, j, &mk)
					if mask.Complement {
						mt = !mt
					}
					if mt {
						ind = append(ind, j)
						val = append(val, spa[j])
					}
				}
			} else {
				for _, j := range pattern {
					ind = append(ind, j)
					val = append(val, spa[j])
				}
			}
			rowLen[i] = len(ind) - start
		}
		pInd[part] = ind
		pVal[part] = val
	})
	stitch(out, parts, pInd, pVal, rowLen)
	return out
}

// Kron computes the Kronecker product T = A ⊗kron B with the given multiply
// operator: T is (A.Rows*B.Rows) × (A.Cols*B.Cols) and
// T(i*Br+k, j*Bc+l) = mul(A(i,j), B(k,l)) for every pair of stored entries.
func Kron[A, B, C any](a *CSR[A], b *CSR[B], mul func(A, B) C, threads int) *CSR[C] {
	rows := a.Rows * b.Rows
	cols := a.Cols * b.Cols
	out := NewCSR[C](rows, cols)
	if a.NNZ() == 0 || b.NNZ() == 0 {
		return out
	}
	out.Ind = make([]int, a.NNZ()*b.NNZ())
	out.Val = make([]C, a.NNZ()*b.NNZ())
	// Row (ia*b.Rows + ib) holds nnz(A row ia) * nnz(B row ib) entries.
	for i := 0; i < rows; i++ {
		ia, ib := i/b.Rows, i%b.Rows
		out.Ptr[i+1] = out.Ptr[i] + (a.Ptr[ia+1]-a.Ptr[ia])*(b.Ptr[ib+1]-b.Ptr[ib])
	}
	parallel.For(rows, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ia, ib := i/b.Rows, i%b.Rows
			aInd, aVal := a.Row(ia)
			bInd, bVal := b.Row(ib)
			p := out.Ptr[i]
			for k := range aInd {
				base := aInd[k] * b.Cols
				for t := range bInd {
					out.Ind[p] = base + bInd[t]
					out.Val[p] = mul(aVal[k], bVal[t])
					p++
				}
			}
		}
	})
	return out
}

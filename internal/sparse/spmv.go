package sparse

import (
	"sort"
	"unsafe"

	"github.com/grblas/grb/internal/parallel"
)

// SpMV computes t = A ·(⊕,⊗) u with adaptive gather-buffer selection
// (SpMVKernel with KernelAuto).
func SpMV[A, X, Y any](a *CSR[A], u *Vec[X], mul func(A, X) Y, add func(Y, Y) Y, mask VMask, threads int) *Vec[Y] {
	return SpMVKernel(a, u, mul, add, mask, threads, KernelAuto)
}

// SpMVKernel computes t = A ·(⊕,⊗) u (GraphBLAS mxv): t(i) = ⊕_j A(i,j) ⊗ u(j).
// This is the pull-style product: rows of A are traversed in nnz-balanced
// parallel ranges and each row gathers its matching entries of u.
//
// The gather buffer is chosen by the same dense/hash policy as SpGEMM:
//
//   - dense: u is scattered once into an O(u.N) value+presence buffer with
//     O(1) lookups — right when u is a sizable fraction of its space.
//   - hash: a read-only open-addressing table of O(nnz(u)) slots shared by
//     all workers — right when u is hypersparse and the dense workspace
//     would dwarf the useful work (wide masked pull traversals).
//
// With KernelAuto the hash path is taken when nnz(u) < u.N/HashThreshold().
//
// An optional mask prunes whole rows before any work is done on them — the
// key optimization for masked pull-style traversals (e.g. BFS with a
// complemented visited mask). The mask is compiled once by vmaskLookup
// (dense bitmap or hash table, same policy as the gather buffer), so the
// per-row admission test is O(1) rather than a binary search.
// SpMVKernel is the unhardened compatibility form of SpMVKernelEx: zero
// execution environment, re-panic on the errors only injected faults could
// then produce.
func SpMVKernel[A, X, Y any](a *CSR[A], u *Vec[X], mul func(A, X) Y, add func(Y, Y) Y, mask VMask, threads int, hint Kernel) *Vec[Y] {
	out, err := SpMVKernelEx(a, u, mul, add, mask, Exec{Threads: threads}, hint)
	if err != nil {
		panic(err)
	}
	return out
}

// SpMVKernelEx is the hardened pull-style product: same algorithm and output
// as SpMVKernel, with budget charging on the gather buffer (degrading from
// the dense scatter to the hash table when the dense buffer no longer fits),
// cancellation checkpoints at range granularity, and panic recovery.
func SpMVKernelEx[A, X, Y any](a *CSR[A], u *Vec[X], mul func(A, X) Y, add func(Y, Y) Y, mask VMask, e Exec, hint Kernel) (out *Vec[Y], err error) {
	defer recoverExec(&err)
	threads := e.threads()
	pullCalls.Add(1)
	var lookup func(j int) (X, bool)
	var zero X
	denseBytes := int64(u.N) * int64(unsafe.Sizeof(zero)+1)
	hashBytes := int64(hashCapacity(u.NNZ())) * slotBytes[X]()
	useHash := chooseHash(hint, u.NNZ(), u.N)
	if !useHash && e.Tx != nil && !e.Tx.Fits(denseBytes) && hashBytes < denseBytes {
		// Budget degradation: gather through the hash table instead of the
		// dense scatter buffer that no longer fits.
		useHash = true
		budgetDegrades.Add(1)
	}
	if useHash {
		hashRanges.Add(1)
		e.mustCharge(siteSpMVHash, hashBytes)
		h := newHashLookup(u)
		lookup = h.get
	} else {
		denseRanges.Add(1)
		e.mustCharge(siteSpMVGather, denseBytes)
		uv, uok := u.Scatter()
		scratchBytes.Add(denseBytes)
		lookup = func(j int) (X, bool) { return uv[j], uok[j] }
	}
	admit := vmaskLookup(mask, a.Rows)
	parts := parallel.BalancedRanges(a.Rows, threads, a.Ptr)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]Y, nparts)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		e.checkpoint()
		var ind []int
		var val []Y
		for i := lo; i < hi; i++ {
			if admit != nil && !admit(i) {
				continue
			}
			aInd, aVal := a.Row(i)
			var acc Y
			any := false
			for k := range aInd {
				x, ok := lookup(aInd[k])
				if !ok {
					continue
				}
				p := mul(aVal[k], x)
				if !any {
					acc = p
					any = true
				} else {
					acc = add(acc, p)
				}
			}
			if any {
				ind = append(ind, i)
				val = append(val, acc)
			}
		}
		pInd[part] = ind
		pVal[part] = val
	})
	out = &Vec[Y]{N: a.Rows}
	total := 0
	for _, s := range pInd {
		total += len(s)
	}
	out.Ind = make([]int, 0, total)
	out.Val = make([]Y, 0, total)
	for p := 0; p < nparts; p++ {
		out.Ind = append(out.Ind, pInd[p]...)
		out.Val = append(out.Val, pVal[p]...)
	}
	return out, nil
}

// VxM computes t = u ·(⊕,⊗) A (GraphBLAS vxm): t(j) = ⊕_i u(i) ⊗ A(i,j).
// This is the push-style product: the stored entries of u are partitioned
// across workers, each scatters its contributions into a private SPA of
// width A.Cols, and the per-worker SPAs are then reduced with add. For a
// sparse frontier u this touches only the rows of A selected by u.
//
// The mask test happens inside the scatter loop, not at emit time: products
// the mask rules out are never multiplied, never scattered and never reduced.
// With a complemented visited mask (BFS) the pruned fraction grows every
// level, which is where the push direction earns its keep. The compiled
// predicate (vmaskLookup) costs O(1) per product.
//
// The per-worker SPAs are combined by one of two reductions, both folding
// partitions in ascending order so the two paths produce identical outputs:
//
//   - dense (total emitted pattern within a HashThreshold factor of A.Cols):
//     output columns are range-partitioned across workers and each worker
//     folds all SPAs over its own range, emitting in column order directly —
//     the reduction parallelizes instead of serializing behind worker 0.
//   - sparse: the classic sequential pattern merge into worker 0's SPA,
//     which is cheap precisely because the patterns are small.
// VxM is the unhardened compatibility form of VxMEx: zero execution
// environment, re-panic on the errors only injected faults could then
// produce.
func VxM[X, A, Y any](u *Vec[X], a *CSR[A], mul func(X, A) Y, add func(Y, Y) Y, mask VMask, threads int) *Vec[Y] {
	out, err := VxMEx(u, a, mul, add, mask, Exec{Threads: threads})
	if err != nil {
		panic(err)
	}
	return out
}

// VxMEx is the hardened push-style product: same algorithm and output as
// VxM, with the per-worker SPA allocations charged against the budget. The
// push SPA has no sparse fallback of its own, so degradation under pressure
// is thread halving (fewer concurrently-live SPAs); when even one SPA cannot
// be charged the kernel aborts with ErrBudget — the grb layer avoids that by
// flipping direction to the pull kernel before committing to push.
func VxMEx[X, A, Y any](u *Vec[X], a *CSR[A], mul func(X, A) Y, add func(Y, Y) Y, mask VMask, e Exec) (out *Vec[Y], err error) {
	defer recoverExec(&err)
	threads := e.threads()
	pushCalls.Add(1)
	if mask.M == nil && mask.Complement {
		// Complemented nil mask admits nothing; MaskApplyV discards every
		// candidate entry, so the scatter would be pure waste.
		return NewVec[Y](a.Cols), nil
	}
	nu := u.NNZ()
	if threads > nu {
		threads = nu
	}
	if threads < 1 {
		threads = 1
	}
	var zero Y
	spaBytes := int64(a.Cols) * int64(unsafe.Sizeof(zero)+1)
	threads = degradeThreads(e, threads, spaBytes)
	parts := parallel.Ranges(nu, threads)
	nparts := len(parts) - 1
	if nparts == 0 {
		return NewVec[Y](a.Cols), nil
	}
	admit := vmaskLookup(mask, a.Cols)
	spas := make([][]Y, nparts)
	marks := make([][]bool, nparts)
	patterns := make([][]int, nparts)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		e.checkpoint()
		e.mustCharge(siteVxMSpa, spaBytes)
		spa := make([]Y, a.Cols)
		mark := make([]bool, a.Cols)
		scratchBytes.Add(spaBytes)
		var pattern []int
		for k := lo; k < hi; k++ {
			i := u.Ind[k]
			uv := u.Val[k]
			aInd, aVal := a.Row(i)
			for t := range aInd {
				j := aInd[t]
				if admit != nil && !admit(j) {
					continue
				}
				p := mul(uv, aVal[t])
				if !mark[j] {
					mark[j] = true
					spa[j] = p
					pattern = append(pattern, j)
				} else {
					spa[j] = add(spa[j], p)
				}
			}
		}
		spas[part] = spa
		marks[part] = mark
		patterns[part] = pattern
	})
	return reduceSpas(a.Cols, threads, spas, marks, patterns, add), nil
}

// reduceSpas combines the push kernel's per-worker scatter SPAs into one
// sorted vector. Shared by the generic (VxMEx) and monomorphized (vxmMono)
// scatter kernels so both fold partitions in exactly the same order — the
// differential battery compares their outputs with ==.
func reduceSpas[Y any](cols, threads int, spas [][]Y, marks [][]bool, patterns [][]int, add func(Y, Y) Y) *Vec[Y] {
	nparts := len(spas)
	totalPat := 0
	for _, p := range patterns {
		totalPat += len(p)
	}
	out := &Vec[Y]{N: cols}
	if totalPat == 0 {
		return out
	}
	if nparts > 1 && !chooseHash(KernelAuto, totalPat, cols) {
		// Dense reduction: each worker owns a contiguous column range and
		// folds every partition's SPA over it, in ascending partition order
		// (the same fold order as the sequential merge below). Emission is
		// in column order by construction, so no final sort is needed.
		rparts := parallel.Ranges(cols, threads)
		nr := len(rparts) - 1
		rInd := make([][]int, nr)
		rVal := make([][]Y, nr)
		parallel.Run(rparts, threads, func(part, lo, hi int) {
			var ind []int
			var val []Y
			for j := lo; j < hi; j++ {
				var acc Y
				any := false
				for p := 0; p < nparts; p++ {
					if marks[p] == nil || !marks[p][j] {
						continue
					}
					if !any {
						acc = spas[p][j]
						any = true
					} else {
						acc = add(acc, spas[p][j])
					}
				}
				if any {
					ind = append(ind, j)
					val = append(val, acc)
				}
			}
			rInd[part] = ind
			rVal[part] = val
		})
		out.Ind = make([]int, 0, totalPat)
		out.Val = make([]Y, 0, totalPat)
		for p := 0; p < nr; p++ {
			out.Ind = append(out.Ind, rInd[p]...)
			out.Val = append(out.Val, rVal[p]...)
		}
		return out
	}
	// Sparse reduction: merge worker SPAs into worker 0's.
	spa0, mark0, pat0 := spas[0], marks[0], patterns[0]
	for p := 1; p < nparts; p++ {
		for _, j := range patterns[p] {
			if !mark0[j] {
				mark0[j] = true
				spa0[j] = spas[p][j]
				pat0 = append(pat0, j)
			} else {
				spa0[j] = add(spa0[j], spas[p][j])
			}
		}
	}
	sort.Ints(pat0)
	out.Ind = make([]int, 0, len(pat0))
	out.Val = make([]Y, 0, len(pat0))
	for _, j := range pat0 {
		out.Ind = append(out.Ind, j)
		out.Val = append(out.Val, spa0[j])
	}
	return out
}

package sparse

import (
	"math/rand"
	"testing"
)

// Blocked≡flat differential battery: the 2D-blocked SUMMA plans
// (blockplan.go) must produce output identical to the flat kernels — same
// pattern, same values compared with ==, so floating-point accumulation
// order must match bit for bit — across semirings × masks × accumulator
// hints × spec modes × thread counts × grid shapes. The blocked engine is
// shippable only because this battery holds: any divergence (a tile fold in
// the wrong bk order, a partition boundary that differs from the flat push
// kernel's, a mask admitted after the multiply) fails here first.
//
// Seeds are logged; rerun a failure with GRB_DIFF_SEED=<seed>.

// blockGrids are the grid shapes each sweep pins via SetBlockGrid: the auto
// default, tall, wide, and a degenerate single row of tiles.
var blockGrids = [][2]int{{0, 0}, {2, 3}, {5, 2}, {1, 4}}

// diffBlockedSpGEMM sweeps the matrix product for one semiring over grids ×
// masks × spec modes × accumulator hints × threads, and requires the forced
// blocked plan to agree exactly with the pinned-flat kernel.
func diffBlockedSpGEMM[T comparable](t *testing.T, rng *rand.Rand, semi Semi,
	mul, add func(T, T) T, mk func(*rand.Rand) T) {
	t.Helper()
	for trial := 0; trial < 4; trial++ {
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		a := sprayCSR(rng, m, k, 2*(m+k), mk)
		b := sprayCSR(rng, k, n, 2*(k+n), mk)
		maskM := sprayCSR(rng, m, n, (m*n)/3+1, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
		for _, g := range blockGrids {
			pr, pc := SetBlockGrid(g[0], g[1])
			for _, mv := range maskVariants(maskM) {
				for _, spec := range []Spec{SpecGeneric, SpecMono} {
					for _, threads := range []int{1, 4} {
						for _, hint := range []Kernel{KernelAuto, KernelHash} {
							flat, err := SpGEMMSemiEx(semi, spec, a, b, mul, add, mv.mask,
								Exec{Threads: threads, Block: BlockFlat}, hint)
							if err != nil {
								t.Fatalf("mxm flat %s: %v", mv.name, err)
							}
							blk, err := SpGEMMSemiEx(semi, spec, a, b, mul, add, mv.mask,
								Exec{Threads: threads, Block: BlockForce}, hint)
							if err != nil {
								t.Fatalf("mxm blocked %s: %v", mv.name, err)
							}
							identicalCSR(t, semi.String()+"/mxm/"+mv.name, blk, flat)
						}
					}
				}
			}
			SetBlockGrid(pr, pc)
		}
	}
}

// diffBlockedMxV sweeps the pull (SpMV) and push (VxM) products for one
// semiring over grids × frontiers × masks × threads, forced blocked against
// pinned flat.
func diffBlockedMxV[T comparable](t *testing.T, rng *rand.Rand, semi Semi,
	mul, add func(T, T) T, mk func(*rand.Rand) T) {
	t.Helper()
	for trial := 0; trial < 4; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		a := sprayCSR(rng, rows, cols, 3*(rows+cols), mk)
		for _, g := range blockGrids {
			pr, pc := SetBlockGrid(g[0], g[1])

			// Pull: frontier over cols, mask over rows. Both a sparse and a
			// full frontier — the blocked plan must skip absent frontier
			// entries exactly like the flat gather does.
			for _, u := range []*Vec[T]{sprayVec(rng, cols, 3, mk), fullVec(rng, cols, mk)} {
				for _, mv := range vmaskVariants(rng, rows) {
					for _, threads := range []int{1, 4} {
						flat, err := SpMVSemiEx(semi, SpecGeneric, a, u, mul, add, mv.mask,
							Exec{Threads: threads, Block: BlockFlat}, KernelAuto)
						if err != nil {
							t.Fatalf("pull flat %s: %v", mv.name, err)
						}
						blk, err := SpMVSemiEx(semi, SpecGeneric, a, u, mul, add, mv.mask,
							Exec{Threads: threads, Block: BlockForce}, KernelAuto)
						if err != nil {
							t.Fatalf("pull blocked %s: %v", mv.name, err)
						}
						identicalVec(t, semi.String()+"/pull/"+mv.name, blk, flat)
					}
				}
			}

			// Push: frontier over rows, mask over cols. The blocked scatter
			// replicates the flat kernel's exact frontier partition
			// boundaries, so the per-position fold order matches.
			for _, u := range []*Vec[T]{sprayVec(rng, rows, 3, mk), fullVec(rng, rows, mk)} {
				for _, mv := range vmaskVariants(rng, cols) {
					for _, threads := range []int{1, 4} {
						flat, err := VxMSemiEx(semi, SpecGeneric, u, a, mul, add, mv.mask,
							Exec{Threads: threads, Block: BlockFlat})
						if err != nil {
							t.Fatalf("push flat %s: %v", mv.name, err)
						}
						blk, err := VxMSemiEx(semi, SpecGeneric, u, a, mul, add, mv.mask,
							Exec{Threads: threads, Block: BlockForce})
						if err != nil {
							t.Fatalf("push blocked %s: %v", mv.name, err)
						}
						identicalVec(t, semi.String()+"/push/"+mv.name, blk, flat)
					}
				}
			}
			SetBlockGrid(pr, pc)
		}
	}
}

// diffBlockedAll runs every kernel family for one semiring × element type
// and then asserts the blocked plans actually engaged — a silent fallback
// would make the whole battery vacuous.
func diffBlockedAll[T comparable](t *testing.T, rng *rand.Rand, semi Semi,
	mul, add func(T, T) T, mk func(*rand.Rand) T) {
	t.Helper()
	ResetKernelCounts()
	diffBlockedSpGEMM(t, rng, semi, mul, add, mk)
	diffBlockedMxV(t, rng, semi, mul, add, mk)
	if ops, tasks := BlockCounts(); ops == 0 || tasks == 0 {
		t.Fatalf("%s: blocked plans never engaged (ops=%d tasks=%d) — battery is vacuous", semi, ops, tasks)
	}
}

func TestBlockedDifferentialPlusTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffBlockedAll(t, rng, SemiPlusTimes,
		func(a, b float64) float64 { return a * b },
		func(a, b float64) float64 { return a + b },
		func(r *rand.Rand) float64 { return r.NormFloat64() })
	diffBlockedAll(t, rng, SemiPlusTimes,
		func(a, b int64) int64 { return a * b },
		func(a, b int64) int64 { return a + b },
		func(r *rand.Rand) int64 { return int64(r.Intn(19) - 9) })
}

func TestBlockedDifferentialMinPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffBlockedAll(t, rng, SemiMinPlus,
		func(a, b int64) int64 { return a + b },
		monoMin[int64],
		func(r *rand.Rand) int64 { return int64(r.Intn(1000)) })
}

func TestBlockedDifferentialLorLand(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffBlockedAll(t, rng, SemiLorLand,
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a || b },
		func(r *rand.Rand) bool { return r.Intn(3) > 0 })
}

// TestBlockedRoutingGates pins the negative routing space: BlockFlat never
// builds a plan, BlockAuto declines single-threaded work, hash-pinned
// products, and sub-threshold operands — and when auto does engage, the
// result still matches flat exactly.
func TestBlockedRoutingGates(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	mul := func(a, b float64) float64 { return a * b }
	add := func(a, b float64) float64 { return a + b }
	small := sprayCSR(rng, 20, 20, 60, func(r *rand.Rand) float64 { return r.NormFloat64() })

	// BlockFlat: never engages, whatever the operands.
	ResetKernelCounts()
	if _, err := SpGEMMSemiEx(SemiGeneric, SpecGeneric, small, small, mul, add, Mask{},
		Exec{Threads: 4, Block: BlockFlat}, KernelAuto); err != nil {
		t.Fatal(err)
	}
	if ops, _ := BlockCounts(); ops != 0 {
		t.Fatalf("BlockFlat engaged the blocked engine (ops=%d)", ops)
	}

	// BlockAuto on sub-threshold operands: stays flat.
	ResetKernelCounts()
	if _, err := SpGEMMSemiEx(SemiGeneric, SpecGeneric, small, small, mul, add, Mask{},
		Exec{Threads: 4, Block: BlockAuto}, KernelAuto); err != nil {
		t.Fatal(err)
	}
	if ops, _ := BlockCounts(); ops != 0 {
		t.Fatalf("BlockAuto engaged below the nnz threshold (ops=%d)", ops)
	}

	// Lower the threshold so a modest operand qualifies, then check the
	// remaining auto gates: single-threaded and hash-pinned stay flat, and
	// the engaged plan still matches the flat product bit for bit.
	prevTh := SetBlockThreshold(64)
	defer SetBlockThreshold(prevTh)
	big := sprayCSR(rng, 48, 48, 400, func(r *rand.Rand) float64 { return r.NormFloat64() })

	ResetKernelCounts()
	if _, err := SpGEMMSemiEx(SemiGeneric, SpecGeneric, big, big, mul, add, Mask{},
		Exec{Threads: 1, Block: BlockAuto}, KernelAuto); err != nil {
		t.Fatal(err)
	}
	if ops, _ := BlockCounts(); ops != 0 {
		t.Fatalf("BlockAuto engaged single-threaded (ops=%d)", ops)
	}

	ResetKernelCounts()
	if _, err := SpGEMMSemiEx(SemiGeneric, SpecGeneric, big, big, mul, add, Mask{},
		Exec{Threads: 4, Block: BlockAuto}, KernelHash); err != nil {
		t.Fatal(err)
	}
	if ops, _ := BlockCounts(); ops != 0 {
		t.Fatalf("BlockAuto engaged under a hash pin (ops=%d)", ops)
	}

	ResetKernelCounts()
	flat, err := SpGEMMSemiEx(SemiGeneric, SpecGeneric, big, big, mul, add, Mask{},
		Exec{Threads: 4, Block: BlockFlat}, KernelAuto)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := SpGEMMSemiEx(SemiGeneric, SpecGeneric, big, big, mul, add, Mask{},
		Exec{Threads: 4, Block: BlockAuto}, KernelAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ops, _ := BlockCounts(); ops == 0 {
		t.Fatal("BlockAuto never engaged above the threshold")
	}
	identicalCSR(t, "auto-vs-flat", auto, flat)
}

// TestBlockedViewTiles pins the view builder itself: tile concatenation
// reconstructs the flat matrix exactly, metadata nnz sums to the total, and
// the cached view is reused until the requested grid changes.
func TestBlockedViewTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	for trial := 0; trial < 8; trial++ {
		rows := 1 + rng.Intn(50)
		cols := 1 + rng.Intn(50)
		m := sprayCSR(rng, rows, cols, 2*(rows+cols), func(r *rand.Rand) int64 { return int64(r.Intn(100)) })
		gr := 1 + rng.Intn(6)
		gc := 1 + rng.Intn(6)
		bv, err := m.BlockedViewEx(Exec{}, gr, gc)
		if err != nil {
			t.Fatalf("BlockedViewEx: %v", err)
		}
		if bv.NNZ() != m.NNZ() {
			t.Fatalf("meta nnz %d != %d", bv.NNZ(), m.NNZ())
		}
		// Reassemble: for each global row, concatenating the tile rows in
		// block-column order must reproduce the flat row exactly.
		for i := 0; i < rows; i++ {
			var gotJ []int
			var gotV []int64
			bi := 0
			for bi < bv.GridR() && !(i >= bv.RowSplit[bi] && i < bv.RowSplit[bi+1]) {
				bi++
			}
			for bj := 0; bj < bv.GridC(); bj++ {
				tile := bv.Tile(bi, bj)
				tJ, tV := tile.Row(i - bv.RowSplit[bi])
				for k := range tJ {
					gotJ = append(gotJ, tJ[k]+bv.ColSplit[bj])
					gotV = append(gotV, tV[k])
				}
			}
			wantJ, wantV := m.Row(i)
			if len(gotJ) != len(wantJ) {
				t.Fatalf("row %d: nnz %d != %d", i, len(gotJ), len(wantJ))
			}
			for k := range wantJ {
				if gotJ[k] != wantJ[k] || gotV[k] != wantV[k] {
					t.Fatalf("row %d entry %d: (%d,%d) != (%d,%d)",
						i, k, gotJ[k], gotV[k], wantJ[k], wantV[k])
				}
			}
		}
		// Same grid: cache hit returns the same view. New grid: rebuilt.
		again, err := m.BlockedViewEx(Exec{}, gr, gc)
		if err != nil {
			t.Fatalf("BlockedViewEx cached: %v", err)
		}
		if again != bv {
			t.Fatal("same-grid view was rebuilt instead of served from cache")
		}
	}
}

package sparse

import (
	"math/rand"
	"testing"
)

// vmaskRef is the reference mask-admission semantics: present-and-true
// (value), present (structural), inverted under complement.
func vmaskRef(mask VMask, j int) bool {
	if mask.M == nil {
		return !mask.Complement
	}
	present, val := false, false
	for k, mj := range mask.M.Ind {
		if mj == j {
			present, val = true, mask.M.Val[k]
			break
		}
	}
	adm := present && (mask.Structural || val)
	if mask.Complement {
		adm = !adm
	}
	return adm
}

// TestVMaskLookupSemantics checks the compiled mask predicate against the
// reference semantics in both the dense-bitmap and hash regimes, for every
// mask interpretation.
func TestVMaskLookupSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	regimes := []struct {
		name   string
		n, nnz int
	}{
		{"dense", 50, 30},         // nnz ≥ n/threshold: bitmap path
		{"hypersparse", 5000, 12}, // nnz ≪ n/threshold: hash path
	}
	for _, reg := range regimes {
		m := NewVec[bool](reg.n)
		for _, j := range rng.Perm(reg.n)[:reg.nnz] {
			m.Ind = append(m.Ind, j)
			m.Val = append(m.Val, rng.Intn(2) == 0)
		}
		sortVecByIndex(m)
		for _, mv := range []struct {
			name string
			mask VMask
		}{
			{"value", VMask{M: m}},
			{"structural", VMask{M: m, Structural: true}},
			{"complement", VMask{M: m, Complement: true}},
			{"structural-complement", VMask{M: m, Structural: true, Complement: true}},
		} {
			admit := vmaskLookup(mv.mask, reg.n)
			if admit == nil {
				t.Fatalf("%s/%s: nil predicate for a non-nil mask", reg.name, mv.name)
			}
			for j := 0; j < reg.n; j++ {
				if got, want := admit(j), vmaskRef(mv.mask, j); got != want {
					t.Fatalf("%s/%s: admit(%d) = %v, want %v", reg.name, mv.name, j, got, want)
				}
			}
		}
	}
	// Nil-mask corners: no mask admits everything (nil predicate), a
	// complemented nil mask admits nothing.
	if admit := vmaskLookup(VMask{}, 10); admit != nil {
		t.Fatal("nil mask: expected nil (admit-all) predicate")
	}
	admit := vmaskLookup(VMask{Complement: true}, 10)
	if admit == nil {
		t.Fatal("complemented nil mask: expected a predicate")
	}
	for j := 0; j < 10; j++ {
		if admit(j) {
			t.Fatalf("complemented nil mask admitted position %d", j)
		}
	}
}

// sortVecByIndex sorts a vector's parallel (Ind, Val) slices by index —
// sprayed test vectors must satisfy the sorted-pattern invariant.
func sortVecByIndex(v *Vec[bool]) {
	for i := 1; i < len(v.Ind); i++ {
		for k := i; k > 0 && v.Ind[k] < v.Ind[k-1]; k-- {
			v.Ind[k], v.Ind[k-1] = v.Ind[k-1], v.Ind[k] //grblint:ignore snapshotcheck -- test-local vector, normalized before first use
			v.Val[k], v.Val[k-1] = v.Val[k-1], v.Val[k] //grblint:ignore snapshotcheck -- test-local vector, normalized before first use
		}
	}
}

// TestVxMReductionPaths checks that the parallel dense reduction and the
// sequential sparse merge produce identical output: the same product is run
// at thread counts that exercise single-SPA, dense-reduction and sparse-merge
// combining, in both output-density regimes, against the pull kernel over
// the transpose as an independent reference.
func TestVxMReductionPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	mul := func(x, a int) int { return x * a }
	add := func(a, b int) int { return a + b }
	mulFlip := func(a, x int) int { return mul(x, a) }
	for trial := 0; trial < 10; trial++ {
		rows := 2 + rng.Intn(50)
		// Alternate narrow outputs (dense reduction regime) and very wide
		// ones (sparse merge regime).
		cols := 2 + rng.Intn(30)
		if trial%2 == 1 {
			cols = 2000 + rng.Intn(3000)
		}
		a := sprayCSR(rng, rows, cols, 3*rows, func(r *rand.Rand) int { return 1 + r.Intn(9) })
		u := NewVec[int](rows)
		for i := 0; i < rows; i++ {
			if rng.Intn(3) > 0 {
				u.Ind = append(u.Ind, i)
				u.Val = append(u.Val, 1+rng.Intn(9))
			}
		}
		mvec := NewVec[bool](cols)
		for j := 0; j < cols; j++ {
			if rng.Intn(3) == 0 {
				mvec.Ind = append(mvec.Ind, j)
				mvec.Val = append(mvec.Val, rng.Intn(2) == 0)
			}
		}
		masks := []struct {
			name string
			mask VMask
		}{
			{"nomask", VMask{}},
			{"value", VMask{M: mvec}},
			{"structural", VMask{M: mvec, Structural: true}},
			{"complement", VMask{M: mvec, Complement: true}},
			{"structural-complement", VMask{M: mvec, Structural: true, Complement: true}},
		}
		at := Transpose(a)
		for _, mv := range masks {
			base := VxM(u, a, mul, add, mv.mask, 1)
			ref := SpMVKernel(at, u, mulFlip, add, mv.mask, 1, KernelAuto)
			for _, pair := range []struct {
				name string
				got  *Vec[int]
			}{
				{"threads=3", VxM(u, a, mul, add, mv.mask, 3)},
				{"threads=8", VxM(u, a, mul, add, mv.mask, 8)},
				{"pull-reference", ref},
			} {
				if len(pair.got.Ind) != len(base.Ind) {
					t.Fatalf("trial %d %s/%s: nnz %d != %d", trial, mv.name, pair.name, len(pair.got.Ind), len(base.Ind))
				}
				for k := range base.Ind {
					if pair.got.Ind[k] != base.Ind[k] || pair.got.Val[k] != base.Val[k] {
						t.Fatalf("trial %d %s/%s: entry %d (%d,%v) != (%d,%v)", trial, mv.name, pair.name,
							k, pair.got.Ind[k], pair.got.Val[k], base.Ind[k], base.Val[k])
					}
				}
			}
		}
	}
}

// TestChoosePushRouting pins the threshold and checks the density heuristic's
// decision table.
func TestChoosePushRouting(t *testing.T) {
	prev := SetDirectionThreshold(defaultDirectionThreshold)
	defer SetDirectionThreshold(prev)

	const dim = 1600 // dim/threshold = 100
	sparseMask := NewVec[bool](dim)
	for j := 0; j < 10; j++ {
		sparseMask.Ind = append(sparseMask.Ind, j*100)
		sparseMask.Val = append(sparseMask.Val, true)
	}
	cases := []struct {
		name string
		nnzU int
		mask VMask
		want bool
	}{
		{"sparse frontier", 5, VMask{}, true},
		{"dense frontier", 800, VMask{}, false},
		{"boundary frontier", 100, VMask{}, false}, // nnzU == dim/t is not sparse
		{"sparse frontier, sparse mask", 5, VMask{M: sparseMask}, false},
		{"sparse frontier, sparse complemented mask", 5, VMask{M: sparseMask, Complement: true}, true},
	}
	for _, tc := range cases {
		if got := ChoosePush(tc.nnzU, dim, tc.mask, dim); got != tc.want {
			t.Errorf("%s: ChoosePush = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Threshold 1 makes push require nnzU < dim: even a near-dense frontier
	// routes to push, and the sparse-mask veto needs nnz(m) < outDim.
	SetDirectionThreshold(1)
	if !ChoosePush(800, dim, VMask{}, dim) {
		t.Error("threshold=1: near-dense frontier should still push")
	}
	if ChoosePush(800, dim, VMask{M: sparseMask}, dim) {
		t.Error("threshold=1: any non-full non-complemented mask should force pull")
	}
}

// TestDirectionCounters checks that the push/pull kernels bump their routing
// counters and that ResetKernelCounts clears them along with the transpose
// materialization count.
func TestDirectionCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	a := sprayCSR(rng, 20, 20, 60, func(r *rand.Rand) int { return 1 + r.Intn(9) })
	u := NewVec[int](20)
	u.Ind = append(u.Ind, 3)
	u.Val = append(u.Val, 2)
	mul := func(x, y int) int { return x * y }
	add := func(x, y int) int { return x + y }

	ResetKernelCounts()
	VxM(u, a, mul, add, VMask{}, 2)
	SpMVKernel(a, u, mul, add, VMask{}, 2, KernelAuto)
	SpMVKernel(a, u, mul, add, VMask{}, 2, KernelAuto)
	push, pull := DirectionCounts()
	if push != 1 || pull != 2 {
		t.Fatalf("DirectionCounts = (%d, %d), want (1, 2)", push, pull)
	}
	Transpose(a)
	if TransposeCount() == 0 {
		t.Fatal("Transpose did not bump the materialization counter")
	}
	ResetKernelCounts()
	push, pull = DirectionCounts()
	if push != 0 || pull != 0 || TransposeCount() != 0 {
		t.Fatal("ResetKernelCounts did not clear the direction/transpose counters")
	}
}

// TestTransposeCachedMemoization checks the CSR-resident cache contract:
// repeated calls return the identical materialization, the reverse direction
// is pre-seeded ((Aᵀ)ᵀ = A, same object), and each distinct CSR pays exactly
// one materialization.
func TestTransposeCachedMemoization(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	a := sprayCSR(rng, 30, 40, 100, func(r *rand.Rand) int { return r.Intn(100) })

	ResetKernelCounts()
	t1 := TransposeCached(a)
	t2 := TransposeCached(a)
	if t1 != t2 {
		t.Fatal("TransposeCached returned distinct objects for the same CSR")
	}
	if got := TransposeCount(); got != 1 {
		t.Fatalf("two cached calls materialized %d times, want 1", got)
	}
	if back := TransposeCached(t1); back != a {
		t.Fatal("(Aᵀ)ᵀ did not return the original CSR from the cache")
	}
	if got := TransposeCount(); got != 1 {
		t.Fatalf("round-trip materialized %d times, want 1", got)
	}
	// The cached view must be the actual transpose.
	identicalCSR(t, "cached-vs-direct", t1, Transpose(a))
}

package sparse

import (
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------------
// Dense reference implementations: every kernel is validated against a
// straightforward dense computation on randomly generated inputs, across a
// range of thread counts.
// ---------------------------------------------------------------------------

// denseOf expands a CSR into (values, present) dense form.
func denseOf(m *CSR[int]) ([][]int, [][]bool) {
	v := make([][]int, m.Rows)
	p := make([][]bool, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = make([]int, m.Cols)
		p[i] = make([]bool, m.Cols)
		ind, val := m.Row(i)
		for k := range ind {
			v[i][ind[k]] = val[k]
			p[i][ind[k]] = true
		}
	}
	return v, p
}

// fromDense builds a CSR from dense (values, present) form.
func fromDense(v [][]int, p [][]bool) *CSR[int] {
	rows := len(v)
	cols := 0
	if rows > 0 {
		cols = len(v[0])
	}
	out := NewCSR[int](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if p[i][j] {
				out.Ind = append(out.Ind, j)
				out.Val = append(out.Val, v[i][j])
			}
		}
		out.Ptr[i+1] = len(out.Ind)
	}
	return out
}

func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR[int] {
	out := NewCSR[int](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				out.Ind = append(out.Ind, j)
				out.Val = append(out.Val, 1+rng.Intn(9))
			}
		}
		out.Ptr[i+1] = len(out.Ind)
	}
	return out
}

func randBoolCSR(rng *rand.Rand, rows, cols int, density float64) *CSR[bool] {
	out := NewCSR[bool](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				out.Ind = append(out.Ind, j)
				out.Val = append(out.Val, rng.Intn(2) == 0)
			}
		}
		out.Ptr[i+1] = len(out.Ind)
	}
	return out
}

func randVec(rng *rand.Rand, n int, density float64) *Vec[int] {
	out := NewVec[int](n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			out.Ind = append(out.Ind, i)
			out.Val = append(out.Val, 1+rng.Intn(9))
		}
	}
	return out
}

var threadCounts = []int{1, 2, 4, 7}

func TestSpGEMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	add := func(a, b int) int { return a + b }
	mul := func(a, b int) int { return a * b }
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(15)
		k := 1 + rng.Intn(15)
		n := 1 + rng.Intn(15)
		a := randCSR(rng, m, k, 0.3)
		b := randCSR(rng, k, n, 0.3)
		for _, threads := range threadCounts {
			got := SpGEMM(a, b, mul, add, Mask{}, threads)
			if !got.Valid() {
				t.Fatalf("invalid result (threads=%d)", threads)
			}
			// dense reference
			av, ap := denseOf(a)
			bv, bp := denseOf(b)
			wv := make([][]int, m)
			wp := make([][]bool, m)
			for i := 0; i < m; i++ {
				wv[i] = make([]int, n)
				wp[i] = make([]bool, n)
				for kk := 0; kk < k; kk++ {
					if !ap[i][kk] {
						continue
					}
					for j := 0; j < n; j++ {
						if !bp[kk][j] {
							continue
						}
						wv[i][j] += av[i][kk] * bv[kk][j]
						wp[i][j] = true
					}
				}
			}
			want := fromDense(wv, wp)
			if !EqualFunc(got, want, func(a, b int) bool { return a == b }) {
				t.Fatalf("SpGEMM mismatch (trial %d, threads %d)", trial, threads)
			}
		}
	}
}

func TestSpGEMMMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	add := func(a, b int) int { return a + b }
	mul := func(a, b int) int { return a * b }
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		a := randCSR(rng, n, n, 0.4)
		b := randCSR(rng, n, n, 0.4)
		mask := randBoolCSR(rng, n, n, 0.5)
		for _, structural := range []bool{false, true} {
			for _, comp := range []bool{false, true} {
				mk := Mask{M: mask, Structural: structural, Complement: comp}
				got := SpGEMM(a, b, mul, add, mk, 2)
				full := SpGEMM(a, b, mul, add, Mask{}, 1)
				want := MaskApplyM(NewCSR[int](n, n), full, mk, true, 1)
				if !EqualFunc(got, want, func(a, b int) bool { return a == b }) {
					t.Fatalf("masked SpGEMM != post-filtered (s=%v c=%v)", structural, comp)
				}
			}
		}
	}
}

func TestSpMVAndVxMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	add := func(a, b int) int { return a + b }
	mul := func(a, b int) int { return a * b }
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(20)
		n := 1 + rng.Intn(20)
		a := randCSR(rng, m, n, 0.3)
		u := randVec(rng, n, 0.5)
		v := randVec(rng, m, 0.5)
		for _, threads := range threadCounts {
			// SpMV: t(i) = sum_j a(i,j) u(j)
			got := SpMV(a, u, mul, add, VMask{}, threads)
			want := NewVec[int](m)
			uv, uok := u.Scatter()
			for i := 0; i < m; i++ {
				ind, val := a.Row(i)
				acc, any := 0, false
				for k := range ind {
					if uok[ind[k]] {
						acc += val[k] * uv[ind[k]]
						any = true
					}
				}
				if any {
					want.Ind = append(want.Ind, i)
					want.Val = append(want.Val, acc)
				}
			}
			if !VecEqualFunc(got, want, func(a, b int) bool { return a == b }) {
				t.Fatalf("SpMV mismatch (trial %d threads %d)", trial, threads)
			}
			// VxM: t(j) = sum_i v(i) a(i,j)
			got2 := VxM(v, a, mul, add, VMask{}, threads)
			want2 := NewVec[int](n)
			acc := make([]int, n)
			anyv := make([]bool, n)
			vv, vok := v.Scatter()
			for i := 0; i < m; i++ {
				if !vok[i] {
					continue
				}
				ind, val := a.Row(i)
				for k := range ind {
					acc[ind[k]] += vv[i] * val[k]
					anyv[ind[k]] = true
				}
			}
			for j := 0; j < n; j++ {
				if anyv[j] {
					want2.Ind = append(want2.Ind, j)
					want2.Val = append(want2.Val, acc[j])
				}
			}
			if !VecEqualFunc(got2, want2, func(a, b int) bool { return a == b }) {
				t.Fatalf("VxM mismatch (trial %d threads %d)", trial, threads)
			}
		}
	}
}

func TestEWiseKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(15)
		n := 1 + rng.Intn(15)
		a := randCSR(rng, m, n, 0.4)
		b := randCSR(rng, m, n, 0.4)
		add := func(x, y int) int { return x + y }
		mul := func(x, y int) int { return x * y }
		for _, threads := range threadCounts {
			gotA := EWiseAddM(a, b, add, threads)
			gotM := EWiseMultM(a, b, mul, threads)
			av, ap := denseOf(a)
			bv, bp := denseOf(b)
			sv := make([][]int, m)
			sp := make([][]bool, m)
			pv := make([][]int, m)
			pp := make([][]bool, m)
			for i := 0; i < m; i++ {
				sv[i] = make([]int, n)
				sp[i] = make([]bool, n)
				pv[i] = make([]int, n)
				pp[i] = make([]bool, n)
				for j := 0; j < n; j++ {
					switch {
					case ap[i][j] && bp[i][j]:
						sv[i][j] = av[i][j] + bv[i][j]
						sp[i][j] = true
						pv[i][j] = av[i][j] * bv[i][j]
						pp[i][j] = true
					case ap[i][j]:
						sv[i][j] = av[i][j]
						sp[i][j] = true
					case bp[i][j]:
						sv[i][j] = bv[i][j]
						sp[i][j] = true
					}
				}
			}
			if !EqualFunc(gotA, fromDense(sv, sp), func(a, b int) bool { return a == b }) {
				t.Fatalf("EWiseAddM mismatch (threads %d)", threads)
			}
			if !EqualFunc(gotM, fromDense(pv, pp), func(a, b int) bool { return a == b }) {
				t.Fatalf("EWiseMultM mismatch (threads %d)", threads)
			}
		}
	}
}

func TestMaskApplyMSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		c := randCSR(rng, m, n, 0.4)
		z := randCSR(rng, m, n, 0.4)
		mask := randBoolCSR(rng, m, n, 0.5)
		for _, structural := range []bool{false, true} {
			for _, comp := range []bool{false, true} {
				for _, replace := range []bool{false, true} {
					mk := Mask{M: mask, Structural: structural, Complement: comp}
					got := MaskApplyM(c, z, mk, replace, 2)
					if !got.Valid() {
						t.Fatal("invalid mask result")
					}
					cv, cp := denseOf(c)
					zv, zp := denseOf(z)
					mv, mp := make([][]bool, m), make([][]bool, m)
					for i := range mv {
						mv[i] = make([]bool, n)
						mp[i] = make([]bool, n)
					}
					for i := 0; i < m; i++ {
						ind, val := mask.Row(i)
						for k := range ind {
							mp[i][ind[k]] = true
							mv[i][ind[k]] = val[k]
						}
					}
					wv := make([][]int, m)
					wp := make([][]bool, m)
					for i := 0; i < m; i++ {
						wv[i] = make([]int, n)
						wp[i] = make([]bool, n)
						for j := 0; j < n; j++ {
							mt := mp[i][j]
							if !structural {
								mt = mt && mv[i][j]
							}
							if comp {
								mt = !mt
							}
							if mt {
								if zp[i][j] {
									wv[i][j], wp[i][j] = zv[i][j], true
								}
							} else if !replace && cp[i][j] {
								wv[i][j], wp[i][j] = cv[i][j], true
							}
						}
					}
					if !EqualFunc(got, fromDense(wv, wp), func(a, b int) bool { return a == b }) {
						t.Fatalf("MaskApplyM mismatch (s=%v c=%v r=%v)", structural, comp, replace)
					}
				}
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		a := randCSR(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.3)
		tt := Transpose(Transpose(a))
		if !EqualFunc(a, tt, func(a, b int) bool { return a == b }) {
			t.Fatal("transpose not an involution")
		}
		tr := Transpose(a)
		if !tr.Valid() {
			t.Fatal("invalid transpose")
		}
		// entry correspondence
		for i := 0; i < a.Rows; i++ {
			ind, val := a.Row(i)
			for k := range ind {
				if v, ok := tr.Get(ind[k], i); !ok || v != val[k] {
					t.Fatal("transpose entry mismatch")
				}
			}
		}
	}
}

func TestReduceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	add := func(a, b int) int { return a + b }
	for trial := 0; trial < 20; trial++ {
		a := randCSR(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.4)
		for _, threads := range threadCounts {
			rows := ReduceRows(a, add, threads)
			cols := ReduceCols(a, add, threads)
			all, ok := ReduceAll(a, add, threads)
			sum := 0
			rowSums := make([]int, a.Rows)
			rowAny := make([]bool, a.Rows)
			colSums := make([]int, a.Cols)
			colAny := make([]bool, a.Cols)
			for i := 0; i < a.Rows; i++ {
				ind, val := a.Row(i)
				for k := range ind {
					sum += val[k]
					rowSums[i] += val[k]
					rowAny[i] = true
					colSums[ind[k]] += val[k]
					colAny[ind[k]] = true
				}
			}
			if ok != (a.NNZ() > 0) || (ok && all != sum) {
				t.Fatalf("ReduceAll = %d,%v want %d", all, ok, sum)
			}
			wantRows := GatherVec(rowSums, rowAny)
			wantCols := GatherVec(colSums, colAny)
			if !VecEqualFunc(rows, wantRows, func(a, b int) bool { return a == b }) {
				t.Fatalf("ReduceRows mismatch (threads %d)", threads)
			}
			if !VecEqualFunc(cols, wantCols, func(a, b int) bool { return a == b }) {
				t.Fatalf("ReduceCols mismatch (threads %d)", threads)
			}
		}
	}
}

func TestKronSmall(t *testing.T) {
	a, _ := BuildCSR(2, 2, []int{0, 1}, []int{1, 0}, []int{2, 3}, nil)
	b, _ := BuildCSR(2, 2, []int{0, 1}, []int{0, 1}, []int{5, 7}, nil)
	k, err := Kron(a, b, func(x, y int) int { return x * y }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Valid() || k.Rows != 4 || k.Cols != 4 || k.NNZ() != 4 {
		t.Fatalf("kron shape/nnz wrong: %dx%d nnz=%d", k.Rows, k.Cols, k.NNZ())
	}
	// a(0,1)=2 × b(0,0)=5 -> (0, 2) = 10
	if v, ok := k.Get(0, 2); !ok || v != 10 {
		t.Fatalf("k(0,2)=%d,%v", v, ok)
	}
	// a(1,0)=3 × b(1,1)=7 -> (3, 1) = 21
	if v, ok := k.Get(3, 1); !ok || v != 21 {
		t.Fatalf("k(3,1)=%d,%v", v, ok)
	}
}

// TestKronOverflow uses shape-only CSR literals (no entries, no Ptr
// allocation) whose dimension products wrap around the int range: Kron must
// reject them with ErrTooLarge before allocating anything, instead of
// corrupting an allocation size.
func TestKronOverflow(t *testing.T) {
	mul := func(x, y int) int { return x * y }
	huge := 1 << 40
	cases := []struct {
		name string
		a, b *CSR[int]
	}{
		{"rows-overflow",
			&CSR[int]{Rows: huge, Cols: 1, Ptr: nil},
			&CSR[int]{Rows: huge, Cols: 1, Ptr: nil}},
		{"cols-overflow",
			&CSR[int]{Rows: 1, Cols: huge, Ptr: nil},
			&CSR[int]{Rows: 1, Cols: huge, Ptr: nil}},
		{"sign-flip",
			&CSR[int]{Rows: 1 << 62, Cols: 1, Ptr: nil},
			&CSR[int]{Rows: 3, Cols: 1, Ptr: nil}},
	}
	for _, tc := range cases {
		if _, err := Kron(tc.a, tc.b, mul, 2); err != ErrTooLarge {
			t.Fatalf("%s: err = %v, want ErrTooLarge", tc.name, err)
		}
	}
	// CheckedMul itself: boundary sanity.
	if _, ok := CheckedMul(1<<32, 1<<32); ok {
		t.Fatal("2^64 product reported as representable")
	}
	if p, ok := CheckedMul(1<<31, 1<<31); !ok || p != 1<<62 {
		t.Fatalf("2^62 product rejected: %d %v", p, ok)
	}
	if p, ok := CheckedMul(0, 1<<62); !ok || p != 0 {
		t.Fatal("zero product rejected")
	}
}

func TestExtractMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(12)
		n := 2 + rng.Intn(12)
		a := randCSR(rng, m, n, 0.4)
		nr := 1 + rng.Intn(m+2)
		nc := 1 + rng.Intn(n+2)
		rows := make([]int, nr)
		cols := make([]int, nc)
		for k := range rows {
			rows[k] = rng.Intn(m) // may repeat, unsorted
		}
		for k := range cols {
			cols[k] = rng.Intn(n)
		}
		got, err := ExtractM(a, rows, cols, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Valid() {
			t.Fatal("invalid extract result")
		}
		av, ap := denseOf(a)
		wv := make([][]int, nr)
		wp := make([][]bool, nr)
		for i := range wv {
			wv[i] = make([]int, nc)
			wp[i] = make([]bool, nc)
			for j := range wv[i] {
				if ap[rows[i]][cols[j]] {
					wv[i][j] = av[rows[i]][cols[j]]
					wp[i][j] = true
				}
			}
		}
		if !EqualFunc(got, fromDense(wv, wp), func(a, b int) bool { return a == b }) {
			t.Fatalf("ExtractM mismatch (trial %d)", trial)
		}
	}
}

func TestAssignMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		c := randCSR(rng, m, n, 0.4)
		nr := 1 + rng.Intn(m)
		nc := 1 + rng.Intn(n)
		// distinct row/col targets (duplicates are undefined per spec)
		rows := rng.Perm(m)[:nr]
		cols := rng.Perm(n)[:nc]
		a := randCSR(rng, nr, nc, 0.4)
		for _, withAccum := range []bool{false, true} {
			var accum func(int, int) int
			if withAccum {
				accum = func(x, y int) int { return x + y }
			}
			got, err := AssignM(c, a, rows, cols, accum)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Valid() {
				t.Fatal("invalid assign result")
			}
			cv, cp := denseOf(c)
			av, ap := denseOf(a)
			inRow := make(map[int]int)
			for i, r := range rows {
				inRow[r] = i
			}
			inCol := make(map[int]int)
			for j, cc := range cols {
				inCol[cc] = j
			}
			wv := make([][]int, m)
			wp := make([][]bool, m)
			for i := 0; i < m; i++ {
				wv[i] = make([]int, n)
				wp[i] = make([]bool, n)
				for j := 0; j < n; j++ {
					ai, rin := inRow[i]
					aj, cin := inCol[j]
					if rin && cin {
						hasA := ap[ai][aj]
						hasC := cp[i][j]
						switch {
						case hasA && hasC && withAccum:
							wv[i][j], wp[i][j] = cv[i][j]+av[ai][aj], true
						case hasA:
							wv[i][j], wp[i][j] = av[ai][aj], true
						case hasC && withAccum:
							wv[i][j], wp[i][j] = cv[i][j], true
						}
					} else if cp[i][j] {
						wv[i][j], wp[i][j] = cv[i][j], true
					}
				}
			}
			if !EqualFunc(got, fromDense(wv, wp), func(a, b int) bool { return a == b }) {
				t.Fatalf("AssignM mismatch (trial %d accum %v)", trial, withAccum)
			}
		}
	}
}

func TestAssignScalarMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		c := randCSR(rng, m, n, 0.4)
		rows := rng.Perm(m)[:1+rng.Intn(m)]
		cols := rng.Perm(n)[:1+rng.Intn(n)]
		for _, withAccum := range []bool{false, true} {
			var accum func(int, int) int
			if withAccum {
				accum = func(x, y int) int { return x + y }
			}
			got, err := AssignScalarM(c, 100, rows, cols, accum)
			if err != nil {
				t.Fatal(err)
			}
			cv, cp := denseOf(c)
			inRow := map[int]bool{}
			for _, r := range rows {
				inRow[r] = true
			}
			inCol := map[int]bool{}
			for _, cc := range cols {
				inCol[cc] = true
			}
			wv := make([][]int, m)
			wp := make([][]bool, m)
			for i := 0; i < m; i++ {
				wv[i] = make([]int, n)
				wp[i] = make([]bool, n)
				for j := 0; j < n; j++ {
					if inRow[i] && inCol[j] {
						if withAccum && cp[i][j] {
							wv[i][j] = cv[i][j] + 100
						} else {
							wv[i][j] = 100
						}
						wp[i][j] = true
					} else if cp[i][j] {
						wv[i][j], wp[i][j] = cv[i][j], true
					}
				}
			}
			if !EqualFunc(got, fromDense(wv, wp), func(a, b int) bool { return a == b }) {
				t.Fatalf("AssignScalarM mismatch (trial %d accum %v)", trial, withAccum)
			}
		}
	}
}

func TestSelectAndApplyKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randCSR(rng, 12, 9, 0.5)
	for _, threads := range threadCounts {
		// select strict upper
		sel := SelectM(a, func(v int, i, j int, s int) bool { return j > i+s }, 0, threads)
		if !sel.Valid() {
			t.Fatal("invalid select")
		}
		for i := 0; i < sel.Rows; i++ {
			ind, _ := sel.Row(i)
			for _, j := range ind {
				if j <= i {
					t.Fatal("select kept a lower entry")
				}
			}
		}
		// select ∪ complement-select partitions the input
		other := SelectM(a, func(v int, i, j int, s int) bool { return j <= i+s }, 0, threads)
		if sel.NNZ()+other.NNZ() != a.NNZ() {
			t.Fatal("select does not partition")
		}
		// apply doubles values, preserves pattern
		app := ApplyM(a, func(v int) int { return 2 * v }, threads)
		if app.NNZ() != a.NNZ() {
			t.Fatal("apply changed pattern")
		}
		for k := range a.Val {
			if app.Val[k] != 2*a.Val[k] {
				t.Fatal("apply value wrong")
			}
		}
		// index apply sees correct coordinates
		idx := ApplyIndexM(a, func(v int, i, j int, s int) int { return i*1000 + j }, 0, threads)
		for i := 0; i < a.Rows; i++ {
			ind, val := idx.Row(i)
			for k := range ind {
				if val[k] != i*1000+ind[k] {
					t.Fatal("index apply coordinates wrong")
				}
			}
		}
	}
}

func TestVectorKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		u := randVec(rng, n, 0.5)
		v := randVec(rng, n, 0.5)
		add := EWiseAddV(u, v, func(a, b int) int { return a + b })
		mult := EWiseMultV(u, v, func(a, b int) int { return a * b })
		for i := 0; i < n; i++ {
			uv, uok := u.Get(i)
			vv, vok := v.Get(i)
			av, aok := add.Get(i)
			mv, mok := mult.Get(i)
			if aok != (uok || vok) || mok != (uok && vok) {
				t.Fatal("vector ewise pattern wrong")
			}
			if uok && vok {
				if av != uv+vv || mv != uv*vv {
					t.Fatal("vector ewise values wrong")
				}
			} else if uok && av != uv || vok && !uok && av != vv {
				t.Fatal("vector ewise passthrough wrong")
			}
		}
		// assign vector
		idx := rng.Perm(n)[:1+rng.Intn(n)]
		src := randVec(rng, len(idx), 0.6)
		z, err := AssignV(u, src, idx, nil)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < n; p++ {
			pos := -1
			for k, q := range idx {
				if q == p {
					pos = k
				}
			}
			zv, zok := z.Get(p)
			uv, uok := u.Get(p)
			if pos >= 0 {
				sv, sok := src.Get(pos)
				if zok != sok || (sok && zv != sv) {
					t.Fatal("assignV region wrong")
				}
			} else if zok != uok || (uok && zv != uv) {
				t.Fatal("assignV passthrough wrong")
			}
		}
	}
}

func TestExtractColV(t *testing.T) {
	a, _ := BuildCSR(3, 3, []int{0, 1, 2}, []int{1, 1, 2}, []int{5, 6, 7}, nil)
	v, err := ExtractColV(a, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 {
		t.Fatalf("nnz=%d", v.NNZ())
	}
	if x, _ := v.Get(0); x != 5 {
		t.Fatalf("v(0)=%d", x)
	}
	sub, err := ExtractColV(a, []int{2, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if x, ok := sub.Get(1); !ok || x != 5 {
		t.Fatalf("gathered v(1)=%d,%v", x, ok)
	}
}

func TestDiagKernel(t *testing.T) {
	v, _ := BuildVec(3, []int{0, 2}, []int{1, 3}, nil)
	d := Diag(v, 0)
	if d.Rows != 3 || d.NNZ() != 2 {
		t.Fatalf("diag shape %d nnz %d", d.Rows, d.NNZ())
	}
	if x, _ := d.Get(2, 2); x != 3 {
		t.Fatal("diag entry wrong")
	}
	up := Diag(v, 1)
	if up.Rows != 4 {
		t.Fatalf("superdiag rows=%d", up.Rows)
	}
	if x, ok := up.Get(0, 1); !ok || x != 1 {
		t.Fatal("superdiag entry wrong")
	}
	lo := Diag(v, -2)
	if x, ok := lo.Get(2, 0); !ok || x != 1 {
		t.Fatal("subdiag entry wrong")
	}
}

package sparse

import "github.com/grblas/grb/internal/obsv"

// The kernel-routing counters live in obsv.KernelCounters, one shared group
// with atomic snapshot/reset semantics, so observability sinks and the grb
// compatibility shims read the same numbers the kernels write. kcounter keeps
// the kernels' call sites (`denseRanges.Add(1)`) unchanged: it is an index
// into the group wearing the old atomic.Int64 method set.
type kcounter int

// Add adds d to the counter's slot in the shared group.
func (k kcounter) Add(d int64) { obsv.KernelCounters.Add(int(k), d) }

// Load returns the counter's current value.
func (k kcounter) Load() int64 { return obsv.KernelCounters.Get(int(k)) }

// denseRanges/hashRanges count how many row ranges (SpGEMM) or whole calls
// (SpMV gather) each accumulator served since the last reset; scratchBytes
// totals the accumulator scratch (SPA buffers, stamp arrays, hash tables)
// those ranges allocated. pushCalls/pullCalls count matrix-vector products by
// the kernel that served them; transposeMats counts transpose
// materializations (cache misses). Benchmarks, the differential tests, and
// the obsv sinks read them to observe adaptive selection.
var (
	denseRanges     = kcounter(obsv.KCDenseRanges)
	hashRanges      = kcounter(obsv.KCHashRanges)
	scratchBytes    = kcounter(obsv.KCScratchBytes)
	pushCalls       = kcounter(obsv.KCPushCalls)
	pullCalls       = kcounter(obsv.KCPullCalls)
	transposeMats   = kcounter(obsv.KCTransposeMats)
	budgetDegrades  = kcounter(obsv.KCBudgetDegrades)
	panicsRecovered = kcounter(obsv.KCPanicsRecovered)

	monoKernels       = kcounter(obsv.KCMonoKernels)
	closureFallbacks  = kcounter(obsv.KCClosureFallbacks)
	formatConversions = kcounter(obsv.KCFormatConversions)
)

// bcounter is kcounter for the blocked-engine group (obsv.BlockCounters): the
// blocked counters get their own bank so ResetKernelCounts can swap both
// groups atomically and a reader never sees a torn mix.
type bcounter int

// Add adds d to the counter's slot in the blocked-engine group.
func (k bcounter) Add(d int64) { obsv.BlockCounters.Add(int(k), d) }

// Load returns the counter's current value.
func (k bcounter) Load() int64 { return obsv.BlockCounters.Get(int(k)) }

// blockedOps counts multiply calls served by the blocked (SUMMA) engine;
// tileTasks the tile multiply tasks those calls executed; tileDense/tileHash
// the accumulator each task used; autoBlocks the blocked views built by the
// Wait-time auto-blocker; blockedFallbacks the blocked-route requests that
// fell back to the flat engine (budget refusal, incompatible splits);
// tileScratch the per-tile accumulator scratch.
var (
	blockedOps       = bcounter(obsv.BKBlockedOps)
	tileTasks        = bcounter(obsv.BKTileTasks)
	tileDense        = bcounter(obsv.BKTileDense)
	tileHash         = bcounter(obsv.BKTileHash)
	autoBlocks       = bcounter(obsv.BKAutoBlocks)
	blockedFallbacks = bcounter(obsv.BKBlockedFallbacks)
	tileScratch      = bcounter(obsv.BKTileScratchBytes)
	spanFlops        = bcounter(obsv.BKSpanFlops)
	workFlops        = bcounter(obsv.BKWorkFlops)
)

// KernelCounts returns the number of row ranges served by the dense and hash
// accumulators since the last ResetKernelCounts.
func KernelCounts() (dense, hash int64) {
	return denseRanges.Load(), hashRanges.Load()
}

// ScratchBytes returns the total accumulator scratch allocated since the
// last ResetKernelCounts.
func ScratchBytes() int64 { return scratchBytes.Load() }

// DirectionCounts returns the number of matrix-vector products served by the
// push (VxM scatter) and pull (SpMV gather) kernels since the last
// ResetKernelCounts.
func DirectionCounts() (push, pull int64) {
	return pushCalls.Load(), pullCalls.Load()
}

// TransposeCount returns the number of transpose materializations since the
// last ResetKernelCounts.
func TransposeCount() int64 { return transposeMats.Load() }

// HardeningCounts returns the number of budget-forced route degradations and
// recovered kernel panics since the last ResetKernelCounts.
func HardeningCounts() (degrades, panics int64) {
	return budgetDegrades.Load(), panicsRecovered.Load()
}

// MonoCounts returns the number of multiply calls served by a monomorphized
// semiring kernel and the number that fell back to the generic closure
// kernel since the last ResetKernelCounts. A call counts as mono when its
// semiring/format/spec route admitted it, even if some hash-routed row
// ranges inside it still evaluated closures.
func MonoCounts() (mono, closure int64) {
	return monoKernels.Load(), closureFallbacks.Load()
}

// FormatConversionCount returns the number of sparse→bitmap/dense
// block-format materializations (cache misses, not cached-view hits) since
// the last ResetKernelCounts.
func FormatConversionCount() int64 { return formatConversions.Load() }

// NotePanicRecovered increments the recovered-panic counter; the grb layer
// calls it when a sequence-step recovery (outside the Ex kernels' own guard)
// converts a panic into a parked error.
func NotePanicRecovered() { panicsRecovered.Add(1) }

// NoteBudgetDegrade increments the degradation counter; the grb layer calls
// it when a route change made above the kernels (push→pull direction flip)
// keeps an operation inside its memory budget.
func NoteBudgetDegrade() { budgetDegrades.Add(1) }

// BlockCounts returns the number of multiply calls served by the blocked
// (SUMMA) engine and the number of tile multiply tasks they executed since
// the last ResetKernelCounts.
func BlockCounts() (ops, tasks int64) {
	return blockedOps.Load(), tileTasks.Load()
}

// BlockTileCounts returns the number of tile tasks served by the dense tile
// SPA and the hash tile accumulator since the last ResetKernelCounts.
func BlockTileCounts() (dense, hash int64) {
	return tileDense.Load(), tileHash.Load()
}

// BlockFallbackCount returns the number of blocked-route requests that fell
// back to the flat engine since the last ResetKernelCounts.
func BlockFallbackCount() int64 { return blockedFallbacks.Load() }

// AutoBlockCount returns the number of blocked views built by the Wait-time
// auto-blocker since the last ResetKernelCounts.
func AutoBlockCount() int64 { return autoBlocks.Load() }

// BlockScratchBytes returns the per-tile accumulator scratch allocated by
// blocked plans since the last ResetKernelCounts.
func BlockScratchBytes() int64 { return tileScratch.Load() }

// noteSpan accumulates one SpGEMM call's modeled parallel span (the
// makespan, in flops, of its partition greedily list-scheduled over its
// worker count) and its total flops. The ratio work/span is the plan's
// modeled parallel speedup — a machine-independent load-balance metric the
// benchmark gate compares flat and blocked plans with, immune to the host's
// real core count.
func noteSpan(span, work int64) {
	spanFlops.Add(span)
	workFlops.Add(work)
}

// SpanFlops returns the accumulated modeled span and total flops of the
// span-instrumented SpGEMM calls since the last ResetKernelCounts.
func SpanFlops() (span, work int64) {
	return spanFlops.Load(), workFlops.Load()
}

// modeledSpan returns the makespan of greedy list scheduling of the given
// per-unit flop counts over `workers` equal-speed workers: each unit, in
// order, goes to the least-loaded worker. For the flat kernel's one-range-
// per-worker partition this reduces to the heaviest range; for a blocked
// plan's task list it models what the work-stealing pool achieves.
// Deterministic, so bench gates built on it are noise-free.
func modeledSpan(units []int64, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	load := make([]int64, workers)
	for _, f := range units {
		mi := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[mi] {
				mi = w
			}
		}
		load[mi] += f
	}
	var span int64
	for _, l := range load {
		if l > span {
			span = l
		}
	}
	return span
}

// ResetKernelCounts zeroes the selection and scratch counters, the push/pull
// routing counters, and the transpose-materialization counter — as a group,
// atomically: the backing bank is swapped in one step, so a concurrent reader
// can never observe some counters reset and others not (the torn-group race
// the old per-variable Store(0) reset allowed). The blocked-engine group is
// swapped the same way.
func ResetKernelCounts() {
	obsv.KernelCounters.Reset()
	obsv.BlockCounters.Reset()
}

// notePartSpan records the span of a flat row-partitioned SpGEMM: parts is
// the BalancedRanges boundary list and fptr the per-row flop prefix, so each
// range's flops are fptr deltas and the total is fptr's last entry.
func notePartSpan(parts []int, fptr []int, workers int) {
	units := make([]int64, len(parts)-1)
	for p := range units {
		units[p] = int64(fptr[parts[p+1]] - fptr[parts[p]])
	}
	noteSpan(modeledSpan(units, workers), int64(fptr[len(fptr)-1]))
}

// SpGEMMFlopsTotal returns the total flop upper bound of A·B — the sum the
// symbolic pass (SpGEMMFlops) would prefix — without allocating the prefix
// array. The obsv layer calls it, only when a sink is active, to stamp MxM
// events with their call-time flop estimate.
func SpGEMMFlopsTotal[A, B any](a *CSR[A], b *CSR[B]) int64 {
	var f int64
	for _, k := range a.Ind {
		f += int64(b.Ptr[k+1] - b.Ptr[k])
	}
	return f
}

// FrontierFlops returns the flop bound of a matrix-vector product with
// frontier u: Σ_{i∈u} nnz(A(i,:)), the edges leaving the frontier — the work
// the push kernel performs and the useful fraction of the pull kernel's scan.
func FrontierFlops[A, B any](a *CSR[A], u *Vec[B]) int64 {
	var f int64
	for _, i := range u.Ind {
		f += int64(a.Ptr[i+1] - a.Ptr[i])
	}
	return f
}

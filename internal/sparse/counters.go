package sparse

import "github.com/grblas/grb/internal/obsv"

// The kernel-routing counters live in obsv.KernelCounters, one shared group
// with atomic snapshot/reset semantics, so observability sinks and the grb
// compatibility shims read the same numbers the kernels write. kcounter keeps
// the kernels' call sites (`denseRanges.Add(1)`) unchanged: it is an index
// into the group wearing the old atomic.Int64 method set.
type kcounter int

// Add adds d to the counter's slot in the shared group.
func (k kcounter) Add(d int64) { obsv.KernelCounters.Add(int(k), d) }

// Load returns the counter's current value.
func (k kcounter) Load() int64 { return obsv.KernelCounters.Get(int(k)) }

// denseRanges/hashRanges count how many row ranges (SpGEMM) or whole calls
// (SpMV gather) each accumulator served since the last reset; scratchBytes
// totals the accumulator scratch (SPA buffers, stamp arrays, hash tables)
// those ranges allocated. pushCalls/pullCalls count matrix-vector products by
// the kernel that served them; transposeMats counts transpose
// materializations (cache misses). Benchmarks, the differential tests, and
// the obsv sinks read them to observe adaptive selection.
var (
	denseRanges     = kcounter(obsv.KCDenseRanges)
	hashRanges      = kcounter(obsv.KCHashRanges)
	scratchBytes    = kcounter(obsv.KCScratchBytes)
	pushCalls       = kcounter(obsv.KCPushCalls)
	pullCalls       = kcounter(obsv.KCPullCalls)
	transposeMats   = kcounter(obsv.KCTransposeMats)
	budgetDegrades  = kcounter(obsv.KCBudgetDegrades)
	panicsRecovered = kcounter(obsv.KCPanicsRecovered)

	monoKernels       = kcounter(obsv.KCMonoKernels)
	closureFallbacks  = kcounter(obsv.KCClosureFallbacks)
	formatConversions = kcounter(obsv.KCFormatConversions)
)

// KernelCounts returns the number of row ranges served by the dense and hash
// accumulators since the last ResetKernelCounts.
func KernelCounts() (dense, hash int64) {
	return denseRanges.Load(), hashRanges.Load()
}

// ScratchBytes returns the total accumulator scratch allocated since the
// last ResetKernelCounts.
func ScratchBytes() int64 { return scratchBytes.Load() }

// DirectionCounts returns the number of matrix-vector products served by the
// push (VxM scatter) and pull (SpMV gather) kernels since the last
// ResetKernelCounts.
func DirectionCounts() (push, pull int64) {
	return pushCalls.Load(), pullCalls.Load()
}

// TransposeCount returns the number of transpose materializations since the
// last ResetKernelCounts.
func TransposeCount() int64 { return transposeMats.Load() }

// HardeningCounts returns the number of budget-forced route degradations and
// recovered kernel panics since the last ResetKernelCounts.
func HardeningCounts() (degrades, panics int64) {
	return budgetDegrades.Load(), panicsRecovered.Load()
}

// MonoCounts returns the number of multiply calls served by a monomorphized
// semiring kernel and the number that fell back to the generic closure
// kernel since the last ResetKernelCounts. A call counts as mono when its
// semiring/format/spec route admitted it, even if some hash-routed row
// ranges inside it still evaluated closures.
func MonoCounts() (mono, closure int64) {
	return monoKernels.Load(), closureFallbacks.Load()
}

// FormatConversionCount returns the number of sparse→bitmap/dense
// block-format materializations (cache misses, not cached-view hits) since
// the last ResetKernelCounts.
func FormatConversionCount() int64 { return formatConversions.Load() }

// NotePanicRecovered increments the recovered-panic counter; the grb layer
// calls it when a sequence-step recovery (outside the Ex kernels' own guard)
// converts a panic into a parked error.
func NotePanicRecovered() { panicsRecovered.Add(1) }

// NoteBudgetDegrade increments the degradation counter; the grb layer calls
// it when a route change made above the kernels (push→pull direction flip)
// keeps an operation inside its memory budget.
func NoteBudgetDegrade() { budgetDegrades.Add(1) }

// ResetKernelCounts zeroes the selection and scratch counters, the push/pull
// routing counters, and the transpose-materialization counter — as a group,
// atomically: the backing bank is swapped in one step, so a concurrent reader
// can never observe some counters reset and others not (the torn-group race
// the old per-variable Store(0) reset allowed).
func ResetKernelCounts() { obsv.KernelCounters.Reset() }

// SpGEMMFlopsTotal returns the total flop upper bound of A·B — the sum the
// symbolic pass (SpGEMMFlops) would prefix — without allocating the prefix
// array. The obsv layer calls it, only when a sink is active, to stamp MxM
// events with their call-time flop estimate.
func SpGEMMFlopsTotal[A, B any](a *CSR[A], b *CSR[B]) int64 {
	var f int64
	for _, k := range a.Ind {
		f += int64(b.Ptr[k+1] - b.Ptr[k])
	}
	return f
}

// FrontierFlops returns the flop bound of a matrix-vector product with
// frontier u: Σ_{i∈u} nnz(A(i,:)), the edges leaving the frontier — the work
// the push kernel performs and the useful fraction of the pull kernel's scan.
func FrontierFlops[A, B any](a *CSR[A], u *Vec[B]) int64 {
	var f int64
	for _, i := range u.Ind {
		f += int64(a.Ptr[i+1] - a.Ptr[i])
	}
	return f
}

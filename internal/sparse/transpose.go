package sparse

import (
	"sync"

	"github.com/grblas/grb/internal/parallel"
)

// transposeCacheMu serializes cache misses in TransposeCached so concurrent
// readers of the same matrix trigger exactly one materialization. It is
// global (shared by every domain instantiation): contention only occurs
// while a transpose is being built, a once-per-matrix event.
var transposeCacheMu sync.Mutex

// TransposeCached returns Aᵀ, memoized on the (immutable) input: the first
// call materializes with Transpose and caches the result on both matrices —
// (Aᵀ)ᵀ = A, so round trips through a Transpose descriptor are free — and
// every later call returns the shared view. Safe for concurrent readers: the
// cache pointer is atomic, and a mutex makes the miss path exactly-once.
// Coherence with mutation needs no invalidation hook because the grb layer
// never mutates a CSR in place; pending-sequence steps and tuple merges
// always install a freshly built matrix with an empty cache.
func TransposeCached[T any](a *CSR[T]) *CSR[T] {
	t, err := TransposeCachedEx(a, Exec{})
	if err != nil {
		panic(err)
	}
	return t
}

// TransposeCachedEx is the hardened form of TransposeCached. The cached view
// outlives the operation that built it, so its memory is charged persistently
// against the budget (never released by the op's transaction); when that
// charge does not fit, the function counts a degradation and returns
// ErrBudget WITHOUT building anything — the caller's cue to skip caching
// (build transiently with TransposeEx) or flip to the orientation it already
// has.
func TransposeCachedEx[T any](a *CSR[T], e Exec) (*CSR[T], error) {
	if t := a.tr.Load(); t != nil {
		return t, nil
	}
	transposeCacheMu.Lock()
	defer transposeCacheMu.Unlock()
	if t := a.tr.Load(); t != nil {
		return t, nil
	}
	if err := siteTranspose.Check(); err != nil {
		return nil, err
	}
	if !e.Tx.ReservePersistent(transposeBytes(a)) {
		budgetDegrades.Add(1)
		return nil, ErrBudget
	}
	t, err := transposeGuarded(a)
	if err != nil {
		return nil, err
	}
	t.tr.Store(a)
	a.tr.Store(t)
	return t, nil
}

// TransposeEx materializes Aᵀ transiently under the execution environment:
// the result is charged to the operation's transaction (released when the op
// completes) and NOT cached on the input — the degraded no-cache route.
func TransposeEx[T any](a *CSR[T], e Exec) (*CSR[T], error) {
	if err := e.charge(siteTranspose, transposeBytes(a)); err != nil {
		return nil, err
	}
	return transposeGuarded(a)
}

// transposeBytes is the budget cost of materializing Aᵀ: the output's index,
// value and pointer arrays.
func transposeBytes[T any](a *CSR[T]) int64 {
	return int64(a.NNZ())*slotBytes[T]() + int64(a.Cols+1)*8
}

// transposeGuarded runs the bucket transpose with panic recovery, so a fault
// injected (or a bug surfacing) mid-build becomes an error, not a crash.
func transposeGuarded[T any](a *CSR[T]) (out *CSR[T], err error) {
	defer recoverExec(&err)
	return Transpose(a), nil
}

// Transpose returns Aᵀ using a two-pass counting (bucket) transpose: column
// populations are counted, prefix-summed into the output row pointer, then
// entries are scattered. The scatter preserves row order within each output
// row, so column indices stay sorted. O(nnz + rows + cols).
func Transpose[T any](a *CSR[T]) *CSR[T] {
	transposeMats.Add(1)
	out := &CSR[T]{Rows: a.Cols, Cols: a.Rows,
		Ptr: make([]int, a.Cols+1),
		Ind: make([]int, a.NNZ()),
		Val: make([]T, a.NNZ())}
	for _, j := range a.Ind {
		out.Ptr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		out.Ptr[j+1] += out.Ptr[j]
	}
	next := make([]int, a.Cols)
	copy(next, out.Ptr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		ind, val := a.Row(i)
		for k := range ind {
			j := ind[k]
			p := next[j]
			next[j]++
			out.Ind[p] = i
			out.Val[p] = val[k]
		}
	}
	DebugCheckCSR(out, "Transpose")
	return out
}

// Diag builds a square matrix whose k-th diagonal holds the entries of v:
// entry v(i) is placed at (i, i+k) for k >= 0 or (i-k, i) for k < 0. The
// matrix is (n+|k|)×(n+|k|) with n = v.N, matching GrB_Matrix_diag.
func Diag[T any](v *Vec[T], k int) *CSR[T] {
	abs := k
	if abs < 0 {
		abs = -abs
	}
	n := v.N + abs
	out := NewCSR[T](n, n)
	out.Ind = make([]int, 0, v.NNZ())
	out.Val = make([]T, 0, v.NNZ())
	for idx, i := range v.Ind {
		var r, c int
		if k >= 0 {
			r, c = i, i+k
		} else {
			r, c = i-k, i
		}
		out.Ind = append(out.Ind, c)
		out.Val = append(out.Val, v.Val[idx])
		out.Ptr[r+1]++
	}
	for i := 0; i < n; i++ {
		out.Ptr[i+1] += out.Ptr[i]
	}
	DebugCheckCSR(out, "Diag")
	return out
}

// ReduceRows reduces each row of A with the monoid operation, producing the
// vector t(i) = ⊕_j A(i,j). Rows with no entries produce no output entry
// (GraphBLAS reduce-to-vector semantics).
func ReduceRows[T any](a *CSR[T], add func(T, T) T, threads int) *Vec[T] {
	parts := parallel.BalancedRanges(a.Rows, threads, a.Ptr)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]T, nparts)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		var ind []int
		var val []T
		for i := lo; i < hi; i++ {
			_, rv := a.Row(i)
			if len(rv) == 0 {
				continue
			}
			acc := rv[0]
			for k := 1; k < len(rv); k++ {
				acc = add(acc, rv[k])
			}
			ind = append(ind, i)
			val = append(val, acc)
		}
		pInd[part] = ind
		pVal[part] = val
	})
	out := &Vec[T]{N: a.Rows}
	for p := 0; p < nparts; p++ {
		out.Ind = append(out.Ind, pInd[p]...)
		out.Val = append(out.Val, pVal[p]...)
	}
	return out
}

// ReduceCols reduces each column of A: t(j) = ⊕_i A(i,j). Implemented by
// scattering into per-worker accumulators of width A.Cols and merging.
func ReduceCols[T any](a *CSR[T], add func(T, T) T, threads int) *Vec[T] {
	parts := parallel.BalancedRanges(a.Rows, threads, a.Ptr)
	nparts := len(parts) - 1
	if nparts == 0 {
		return NewVec[T](a.Cols)
	}
	accs := make([][]T, nparts)
	oks := make([][]bool, nparts)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		acc := make([]T, a.Cols)
		ok := make([]bool, a.Cols)
		for i := lo; i < hi; i++ {
			ind, val := a.Row(i)
			for k := range ind {
				j := ind[k]
				if !ok[j] {
					ok[j] = true
					acc[j] = val[k]
				} else {
					acc[j] = add(acc[j], val[k])
				}
			}
		}
		accs[part] = acc
		oks[part] = ok
	})
	// Some parts may be empty (nnz-balanced ranges can collapse); find the
	// first populated accumulator as the merge base.
	base := -1
	for p := 0; p < nparts; p++ {
		if accs[p] != nil {
			base = p
			break
		}
	}
	if base < 0 {
		return NewVec[T](a.Cols)
	}
	acc0, ok0 := accs[base], oks[base]
	for p := base + 1; p < nparts; p++ {
		if accs[p] == nil {
			continue
		}
		for j := 0; j < a.Cols; j++ {
			if oks[p][j] {
				if !ok0[j] {
					ok0[j] = true
					acc0[j] = accs[p][j]
				} else {
					acc0[j] = add(acc0[j], accs[p][j])
				}
			}
		}
	}
	return GatherVec(acc0, ok0)
}

// ReduceAll reduces every stored entry of A to a single value; ok is false
// when A has no entries (the GraphBLAS 2.0 Scalar-output reduce returns an
// empty GrB_Scalar in that case, §VI).
func ReduceAll[T any](a *CSR[T], add func(T, T) T, threads int) (T, bool) {
	var zero T
	if a.NNZ() == 0 {
		return zero, false
	}
	parts := parallel.Ranges(a.NNZ(), threads)
	nparts := len(parts) - 1
	partial := make([]T, nparts)
	has := make([]bool, nparts)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		acc := a.Val[lo]
		for k := lo + 1; k < hi; k++ {
			acc = add(acc, a.Val[k])
		}
		partial[part] = acc
		has[part] = true
	})
	var acc T
	any := false
	for p := 0; p < nparts; p++ {
		if !has[p] {
			continue
		}
		if !any {
			acc = partial[p]
			any = true
		} else {
			acc = add(acc, partial[p])
		}
	}
	return acc, any
}

// ReduceVec reduces every stored entry of a vector; ok is false when empty.
func ReduceVec[T any](v *Vec[T], add func(T, T) T) (T, bool) {
	var zero T
	if v.NNZ() == 0 {
		return zero, false
	}
	acc := v.Val[0]
	for k := 1; k < len(v.Val); k++ {
		acc = add(acc, v.Val[k])
	}
	return acc, true
}

// Package grb is the lockcheck corpus: a miniature of the object/registry
// locking structure. The analyzer flags calls to lock-acquiring grb entry
// points made while a mutex is held, so the corpus carries both the entry
// points and the offending callers in one package named grb, like the real
// module.
package grb

import "sync"

// Matrix is a stub object with the real layout's internal mutex.
type Matrix struct {
	mu    sync.Mutex
	freed bool
}

// Wait is a lock-acquiring entry point.
func (m *Matrix) Wait() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return nil
}

// Nvals is a lock-acquiring read.
func (m *Matrix) Nvals() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return 0, nil
}

// materializeLocked documents that the caller already holds m.mu.
func (m *Matrix) materializeLocked() {}

// resolveCtx stands in for the context-registry resolution path (takes the
// registry lock).
func resolveCtx() {}

// NewContext registers a context (takes the registry lock).
func NewContext() *Matrix { return &Matrix{} }

func (m *Matrix) deadlockSelf() {
	m.mu.Lock()
	defer m.mu.Unlock()
	_ = m.Wait() // want `call to Wait while holding m\.mu`
}

func (m *Matrix) readUnderLock() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, _ := m.Nvals() // want `call to Nvals while holding m\.mu`
	return n
}

func (m *Matrix) registryUnderObjectLock() {
	m.mu.Lock()
	resolveCtx() // want `call to resolveCtx while holding m\.mu`
	m.mu.Unlock()
}

func (m *Matrix) doubleLock() {
	m.mu.Lock()
	m.mu.Lock() // want `m\.mu\.Lock\(\) while m\.mu is already held`
	m.mu.Unlock()
	m.mu.Unlock()
}

// lockedHelperOK: *Locked helpers are the blessed way to work under the lock.
func (m *Matrix) lockedHelperOK() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.materializeLocked()
}

// releaseFirstOK: the protocol — unlock, then call the entry point.
func (m *Matrix) releaseFirstOK() error {
	m.mu.Lock()
	m.freed = false
	m.mu.Unlock()
	return m.Wait()
}

// sequenceStepOK: closures are deferred sequence steps that run under the
// owning object's lock by design; their bodies are out of scope.
func (m *Matrix) sequenceStepOK() func() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return func() error { return m.Wait() }
}

// goroutineOK: a spawned goroutine does not inherit the caller's locks.
func (m *Matrix) goroutineOK() {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() { _ = m.Wait() }()
}

// registryBeforeObjectOK: resolve the context before taking the object lock.
func (m *Matrix) registryBeforeObjectOK() {
	resolveCtx()
	m.mu.Lock()
	defer m.mu.Unlock()
}

// suppressed: the shutdown path really does hold both (registry drains the
// object), and documents it.
func (m *Matrix) suppressed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	resolveCtx() //grblint:ignore lockcheck -- corpus: shutdown path owns both locks by construction
}

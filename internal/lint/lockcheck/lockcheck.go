// Package lockcheck implements the grblint analyzer that guards the grb
// layer's locking protocol. Every GraphBLAS object (Matrix, Vector, Scalar,
// Context) carries an internal mutex, and the context registry has a global
// one. The protocol, stated in DESIGN.md:
//
//  1. While holding an object's mutex, never call a grb entry point that
//     acquires a lock itself (Wait, snapshot, enqueue, the read methods, the
//     public mutators): sync.Mutex is not reentrant, so a self-call
//     deadlocks, and a cross-object call while locked risks lock-order
//     inversion with a concurrent caller locking in the opposite order.
//  2. Lock ordering between object locks and the context registry: resolve
//     contexts (initializedContext / resolveCtx / sameContext / isFreed)
//     BEFORE taking an object lock, never while holding one.
//
// Only *Locked helpers (materializeLocked, parkLocked, ...) — which document
// that the caller already holds the lock — and lock-free accessors (Mode,
// Parent, Threads, Chunk) may run under a held mutex. The sparse kernels may
// too: sequence steps execute under the owning object's lock by design.
//
// The analysis is intraprocedural and path-insensitive: it scans each
// function's statements in order, tracking which mutexes are held (a
// deferred Unlock keeps the mutex held to the end of the function, which is
// exactly the repo's idiom).
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc: "report calls to lock-acquiring grb entry points (Wait, snapshot, reads, mutators, context " +
		"registry resolution) made while an object or registry mutex is held, and double-locking",
	Run: run,
}

// forbiddenMethods are grb methods that acquire an object's mutex (or the
// registry's) themselves and therefore must not run under a held lock.
var forbiddenMethods = map[string]bool{
	"Wait": true, "Free": true, "Clear": true, "Dup": true, "Resize": true,
	"Build": true, "SetElement": true, "SetElementScalar": true, "RemoveElement": true,
	"ExtractElement": true, "ExtractElementScalar": true, "ExtractTuples": true,
	"Nvals": true, "Nrows": true, "Ncols": true, "Size": true,
	"SwitchContext": true, "Context": true, "ErrorString": true,
	"snapshot": true, "enqueue": true, "isFreed": true, "materialize": true, "context": true,
}

// forbiddenFuncs are package-level grb functions that take the context
// registry lock (or an object lock) — calling them under an object mutex
// inverts the registry-before-object lock order.
var forbiddenFuncs = map[string]bool{
	"Init": true, "Finalize": true, "initializedContext": true, "resolveCtx": true,
	"sameContext": true, "GlobalContext": true, "NewContext": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc walks the function's statements in source order with the set of
// held mutexes (keyed by the printed receiver expression, e.g. "m.mu").
func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	held := map[string]bool{}
	walkStmts(pass, fd.Body.List, held)
}

func walkStmts(pass *lint.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		walkStmt(pass, s, held)
	}
}

// walkStmt updates held for lock/unlock statements and inspects everything
// else for forbidden calls. Compound statements analyze their bodies with a
// copy of the held set: acquisitions inside a branch do not leak out (a
// conservative approximation that matches the repo's lock-then-defer idiom).
func walkStmt(pass *lint.Pass, s ast.Stmt, held map[string]bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if key, locks, ok := mutexOp(pass.TypesInfo, st.X); ok {
			if locks {
				if held[key] {
					pass.Reportf(st.Pos(), "%s.Lock() while %s is already held: sync.Mutex is not reentrant", key, key)
				}
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		inspectForbidden(pass, st.X, held)
	case *ast.DeferStmt:
		if _, locks, ok := mutexOp(pass.TypesInfo, st.Call); ok && !locks {
			// defer mu.Unlock(): the mutex stays held for the rest of the
			// function; leave it in the set.
			return
		}
		inspectForbidden(pass, st.Call, held)
	case *ast.IfStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, held)
		}
		inspectForbidden(pass, st.Cond, held)
		walkStmts(pass, st.Body.List, copyHeld(held))
		if st.Else != nil {
			walkStmt(pass, st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, held)
		}
		if st.Cond != nil {
			inspectForbidden(pass, st.Cond, held)
		}
		inner := copyHeld(held)
		walkStmts(pass, st.Body.List, inner)
		if st.Post != nil {
			walkStmt(pass, st.Post, inner)
		}
	case *ast.RangeStmt:
		inspectForbidden(pass, st.X, held)
		walkStmts(pass, st.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		walkStmts(pass, st.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, held)
		}
		if st.Tag != nil {
			inspectForbidden(pass, st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		walkStmt(pass, st.Stmt, held)
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the caller's locks.
		inspectForbidden(pass, st.Call, map[string]bool{})
	default:
		inspectForbidden(pass, s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// inspectForbidden reports forbidden grb calls inside n while locks are held.
func inspectForbidden(pass *lint.Pass, n ast.Node, held map[string]bool) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if fl, ok := node.(*ast.FuncLit); ok {
			// Closures run later (sequence steps execute under the lock by
			// design); analyzing their bodies against the current held set
			// would flag the deferred-execution pipeline itself.
			_ = fl
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "grb" {
			return true
		}
		name := fn.Name()
		if strings.HasSuffix(name, "Locked") {
			return true // documented caller-holds-the-lock helpers
		}
		sig := fn.Type().(*types.Signature)
		forbidden := (sig.Recv() != nil && forbiddenMethods[name]) ||
			(sig.Recv() == nil && forbiddenFuncs[name])
		if forbidden {
			pass.Reportf(call.Pos(), "call to %s while holding %s: grb entry points acquire locks "+
				"themselves (deadlock / lock-order inversion risk); release the mutex or use a *Locked helper",
				name, heldList(held))
		}
		return true
	})
}

func heldList(held map[string]bool) string {
	var keys []string
	for k := range held {
		keys = append(keys, k)
	}
	if len(keys) == 1 {
		return keys[0]
	}
	// Deterministic order for diagnostics.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	return strings.Join(keys, ", ")
}

// mutexOp recognizes X.Lock()/X.Unlock()/X.RLock()/X.RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the printed receiver expression
// plus whether it acquires.
func mutexOp(info *types.Info, e ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	tv, found := info.Types[sel.X]
	if !found || !isMutexType(tv.Type) {
		return "", false, false
	}
	return types.ExprString(sel.X), locks, true
}

func isMutexType(t types.Type) bool {
	return lint.IsNamed(t, "sync", "Mutex", "RWMutex")
}

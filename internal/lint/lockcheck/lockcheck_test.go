package lockcheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/linttest"
	"github.com/grblas/grb/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, "testdata", lockcheck.Analyzer, "grb")
}

// Package budgetcheck enforces the execution-substrate budget invariant
// (DESIGN.md "Execution hardening"): inside internal/sparse kernel paths —
// functions threading an Exec environment — transient element-scaled
// scratch must be charged to the memory budget before it is allocated, or
// WithMemoryLimit degradation silently under-counts and the §IV resource
// semantics are fiction.
//
// A "kernel path" is any function (or literal nested in one) in a package
// named sparse whose signature carries an Exec parameter or receiver. In
// such functions the analyzer flags:
//
//   - make of a slice with a non-constant length or capacity
//   - grow-by-append with a spread argument (dst = append(dst, src...))
//
// unless a budget charge — Exec.charge, Exec.mustCharge, BudgetTx.Reserve
// or BudgetTx.ReservePersistent — appears lexically earlier in the
// function. The lexical rule is deliberately an approximation: it accepts
// any allocation that follows the function's first charge (kernels size
// and charge their scratch up front, then allocate), and rejects
// allocations a reader meets before any evidence the function thinks about
// the budget at all.
//
// Exemptions, mirroring the budget model's scope (transient scratch only):
//
//   - constant-size allocations (fixed small scratch, not element-scaled)
//   - slices of slices (per-worker partition headers, O(threads) not O(n))
//   - allocations installed into a field (x.F = make(...)) or built inside
//     a composite literal — result arrays that outlive the op belong to
//     the caller's accounting, exactly like the non-Ex compatibility paths
//
// Anything genuinely exempt for another reason carries a documented
// //grblint:ignore budgetcheck -- reason.
package budgetcheck

import (
	"go/ast"
	"go/types"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the budgetcheck entry point.
var Analyzer = &lint.Analyzer{
	Name: "budgetcheck",
	Doc:  "element-scaled scratch in sparse Exec kernel paths must be budget-charged before allocation",
	Run:  run,
}

// chargeMethods are the budget entry points that mark a function as having
// charged (receiver Exec or BudgetTx, both in package sparse).
var chargeMethods = map[string]bool{
	"charge":            true,
	"mustCharge":        true,
	"Reserve":           true,
	"ReservePersistent": true,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() != "sparse" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasExec(pass, fd) {
				continue
			}
			checkKernel(pass, fd)
		}
	}
	return nil
}

// hasExec reports whether the function's signature (receiver or parameters)
// carries a sparse.Exec, marking it as a kernel path.
func hasExec(pass *lint.Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil && lint.IsNamed(r.Type(), "sparse", "Exec") {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if lint.IsNamed(sig.Params().At(i).Type(), "sparse", "Exec") {
			return true
		}
	}
	return false
}

// checkKernel walks one kernel function: a first pass records allocations
// exempt by assignment context (field installs, composite literals), a
// second pass walks in source order tracking whether a budget charge has
// been seen yet and reports uncovered allocations.
func checkKernel(pass *lint.Pass, fd *ast.FuncDecl) {
	exempt := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if _, isField := n.Lhs[i].(*ast.SelectorExpr); isField {
					exempt[call] = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if call, ok := ast.Unparen(elt).(*ast.CallExpr); ok {
					exempt[call] = true
				}
			}
		}
		return true
	})

	charged := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isChargeCall(pass, call) {
			charged = true
			return true
		}
		if charged || exempt[call] {
			return true
		}
		switch builtinName(pass, call) {
		case "make":
			if flaggableMake(pass, call) {
				pass.Reportf(call.Pos(), "unbudgeted make of element-scaled slice in Exec kernel path before any budget charge (route through Exec.charge/mustCharge or BudgetTx.Reserve)")
			}
		case "append":
			if call.Ellipsis.IsValid() {
				pass.Reportf(call.Pos(), "unbudgeted append growth in Exec kernel path before any budget charge (route through Exec.charge/mustCharge or BudgetTx.Reserve)")
			}
		}
		return true
	})
}

// isChargeCall reports whether the call is one of the budget entry points.
func isChargeCall(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !chargeMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return lint.IsNamed(sig.Recv().Type(), "sparse", "Exec", "BudgetTx")
}

// builtinName returns "make"/"append" when the call invokes that builtin.
func builtinName(pass *lint.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}

// flaggableMake reports whether the make allocates an element-scaled flat
// slice: slice result, at least one non-constant size argument, and an
// element type that is not itself a slice (slice-of-slice headers are
// O(threads) partition scaffolding, not element-scaled payload).
func flaggableMake(pass *lint.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if _, elemIsSlice := sl.Elem().Underlying().(*types.Slice); elemIsSlice {
		return false
	}
	nonConst := false
	for _, arg := range call.Args[1:] {
		if v, ok := pass.TypesInfo.Types[arg]; !ok || v.Value == nil {
			nonConst = true
		}
	}
	return nonConst
}

package budgetcheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/budgetcheck"
	"github.com/grblas/grb/internal/lint/linttest"
)

func TestBudgetCheck(t *testing.T) {
	linttest.Run(t, "testdata", budgetcheck.Analyzer, "sparse")
}

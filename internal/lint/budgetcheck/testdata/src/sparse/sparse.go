// Package sparse is the budgetcheck corpus: a stub of the execution
// substrate's budget API plus kernels exercising every rule and exemption.
package sparse

// BudgetTx stubs the budget transaction.
type BudgetTx struct{}

// Reserve stubs the transient reservation.
func (tx *BudgetTx) Reserve(n int64) bool { return true }

// ReservePersistent stubs the persistent reservation.
func (tx *BudgetTx) ReservePersistent(n int64) bool { return true }

// Exec stubs the execution environment.
type Exec struct{ Tx *BudgetTx }

func (e Exec) charge(bytes int64) error { return nil }
func (e Exec) mustCharge(bytes int64)   {}

// Vec stands in for an output object.
type Vec struct {
	Ind []int
	Val []float64
}

// BadKernelEx allocates element-scaled scratch before any charge.
func BadKernelEx(e Exec, n int) error {
	spa := make([]float64, n) // want `unbudgeted make`
	_ = spa
	return nil
}

// GoodKernelEx charges first, then allocates.
func GoodKernelEx(e Exec, n int) error {
	e.mustCharge(int64(n) * 8)
	spa := make([]float64, n)
	_ = spa
	return nil
}

// GoodReserve charges through the transaction instead of the Exec.
func GoodReserve(e Exec, n int) error {
	if !e.Tx.Reserve(int64(n) * 8) {
		return nil
	}
	buf := make([]int, n)
	_ = buf
	return nil
}

// GoodChargeInIf covers the `if err := e.charge(...)` idiom: the charge in
// the init statement precedes the allocation lexically.
func GoodChargeInIf(e Exec, n int) error {
	if err := e.charge(int64(n) * 8); err != nil {
		return err
	}
	buf := make([]int, n)
	_ = buf
	return nil
}

// ConstScratch is fixed-size scratch: exempt.
func ConstScratch(e Exec) {
	tmp := make([]int, 16)
	_ = tmp
}

// Headers allocates per-worker partition headers (slice of slice): exempt.
func Headers(e Exec, nparts int) {
	p := make([][]int, nparts)
	_ = p
}

// NotKernel has no Exec in its signature: out of scope.
func NotKernel(n int) []int {
	return make([]int, n)
}

// OutputInstall installs into a field of the output object: exempt (the
// budget meters transient scratch, not results that outlive the op).
func OutputInstall(e Exec, out *Vec, n int) {
	out.Ind = make([]int, 0, n)
}

// CompositeOutput builds the output inside a composite literal: exempt.
func CompositeOutput(e Exec, n int) *Vec {
	return &Vec{Ind: make([]int, 0, n)}
}

// BadSpread grows a local slice by a spread append before any charge.
func BadSpread(e Exec, dst, src []int) []int {
	dst = append(dst, src...) // want `unbudgeted append`
	return dst
}

// GoodSpread charges before the spread append.
func GoodSpread(e Exec, dst, src []int) []int {
	e.mustCharge(int64(len(src)) * 8)
	dst = append(dst, src...)
	return dst
}

// ElementAppend grows one element at a time (amortized output emission):
// exempt — only spread growth is flagged.
func ElementAppend(e Exec, dst []int, v int) []int {
	return append(dst, v)
}

// ClosureScratch allocates inside a worker literal after the enclosing
// kernel charged: covered.
func ClosureScratch(e Exec, n int) {
	e.mustCharge(int64(n) * 8)
	run := func() {
		spa := make([]float64, n)
		_ = spa
	}
	run()
}

// BadClosureScratch allocates inside a worker literal with no charge
// anywhere before it.
func BadClosureScratch(e Exec, n int) {
	run := func() {
		spa := make([]float64, n) // want `unbudgeted make`
		_ = spa
	}
	run()
}

// Ignored documents a deliberate exemption.
func Ignored(e Exec, n int) {
	tmp := make([]byte, n) //grblint:ignore budgetcheck -- corpus: deliberate suppressed case
	_ = tmp
}

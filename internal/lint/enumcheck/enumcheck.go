// Package enumcheck implements the grblint analyzer that keeps switches
// over the GraphBLAS enumerations exhaustive. §IX of the GraphBLAS 2.0
// paper pins explicit values for every enumeration member; a switch that
// silently falls through on a member it does not know about (a new Info
// code, a new storage Format) is how enum growth turns into latent bugs.
//
// The rule: a switch whose tag has one of the guarded enum types must
// either carry a default clause or name every declared constant of the
// type. Constants are matched by value, so aliases (e.g. two names pinned
// to the same code) count once.
package enumcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the enumcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "enumcheck",
	Doc: "report non-exhaustive switches over the GraphBLAS enumerations (Info, WaitMode, Mode, " +
		"Format, AxBMethod, Direction, SpecMode) — §IX pins the enum values, so every member must " +
		"be handled or a default supplied",
	Run: run,
}

// guardedEnums are the grb enumeration type names whose switches must be
// exhaustive: the return codes, the wait and execution modes, the exchange
// formats, and the descriptor's kernel-selection fields.
var guardedEnums = map[string]bool{
	"Info": true, "WaitMode": true, "Mode": true,
	"Format": true, "AxBMethod": true, "Direction": true,
	"SpecMode": true, "BlockMode": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *lint.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named := lint.NamedFrom(tv.Type)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "grb" ||
		!guardedEnums[named.Obj().Name()] {
		return
	}

	covered := map[string]bool{}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: the switch handles unknown members
		}
		for _, e := range cc.List {
			if etv, ok := pass.TypesInfo.Types[e]; ok && etv.Value != nil {
				covered[etv.Value.ExactString()] = true
			} else {
				// A non-constant case (variable comparison) defeats the
				// member-coverage analysis; treat it like a default.
				return
			}
		}
	}

	missing := missingMembers(named, covered)
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Pos(), "switch over grb.%s is not exhaustive: missing %s (add the cases or a default; §IX pins the enum values)",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// missingMembers returns the names of declared constants of the enum type
// whose values no case covers, one representative name per value.
func missingMembers(named *types.Named, covered map[string]bool) []string {
	scope := named.Obj().Pkg().Scope()
	byValue := map[string]string{} // value -> first declared name
	var order []string
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(cn.Type(), named) {
			continue
		}
		v := cn.Val()
		if v.Kind() == constant.Unknown {
			continue
		}
		key := v.ExactString()
		if _, seen := byValue[key]; !seen {
			byValue[key] = name
			order = append(order, key)
		}
	}
	var missing []string
	for _, key := range order {
		if !covered[key] {
			missing = append(missing, byValue[key])
		}
	}
	sort.Strings(missing)
	return missing
}

package enumcheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/enumcheck"
	"github.com/grblas/grb/internal/lint/linttest"
)

func TestEnumcheck(t *testing.T) {
	linttest.Run(t, "testdata", enumcheck.Analyzer, "a")
}

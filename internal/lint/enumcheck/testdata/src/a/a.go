// Package a is the enumcheck corpus: switches over the guarded grb
// enumerations in every exhaustiveness state.
package a

import "grb"

func missingMember(i grb.Info) string {
	switch i { // want `switch over grb\.Info is not exhaustive: missing IndexOutOfBounds`
	case grb.Success:
		return "ok"
	case grb.NoValue:
		return "empty"
	}
	return "?"
}

func missingTwo(f grb.Format) { // both members reported, sorted
	switch f { // want `switch over grb\.Format is not exhaustive: missing FormatCSR, FormatDenseRow`
	}
}

func exhaustive(i grb.Info) string {
	switch i { // silent: every value covered (Okay aliases Success)
	case grb.Success:
		return "ok"
	case grb.NoValue:
		return "empty"
	case grb.IndexOutOfBounds:
		return "oob"
	}
	return "?"
}

func defaulted(m grb.Mode) string {
	switch m { // silent: default handles unknown members
	case grb.Blocking:
		return "blocking"
	default:
		return "other"
	}
}

func nonConstantCase(i, sentinel grb.Info) bool {
	switch i { // silent: a non-constant case defeats coverage, treated as default
	case sentinel:
		return true
	}
	return false
}

func multiValueCase(i grb.Info) bool {
	switch i { // silent: one clause may name several members
	case grb.Success, grb.NoValue, grb.IndexOutOfBounds:
		return true
	}
	return false
}

func suppressed(m grb.Mode) string {
	switch m { //grblint:ignore enumcheck -- corpus: only Blocking matters on this path
	case grb.Blocking:
		return "blocking"
	}
	return "?"
}

// untagged switches and non-enum tags are out of scope.
func outOfScope(n int) string {
	switch {
	case n > 0:
		return "+"
	}
	switch n {
	case 0:
		return "0"
	}
	return "?"
}

// Package grb is the enumcheck corpus stub: the guarded enumerations with
// §IX-style pinned values, including an alias pinned to an existing code.
package grb

// Info mirrors the return-code enumeration.
type Info int

const (
	Success          Info = 0
	NoValue          Info = 1
	IndexOutOfBounds Info = 2
	// Okay is an alias pinned to the same value as Success; coverage is by
	// value, so covering Success covers Okay.
	Okay Info = 0
)

// Mode mirrors the execution modes.
type Mode int

const (
	Blocking    Mode = 0
	NonBlocking Mode = 1
)

// Format mirrors the exchange formats.
type Format int

const (
	FormatCSR      Format = 0
	FormatDenseRow Format = 1
)

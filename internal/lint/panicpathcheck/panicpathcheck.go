// Package panicpathcheck enforces the panic-isolation invariants
// (DESIGN.md "Execution hardening"): no injected fault or user-operator
// panic may kill the process, so every goroutine launch and every
// error-returning kernel that fans out work must sit behind a recover
// guard.
//
// Two rules:
//
//   - Every `go` statement (outside package main and _test.go files) must
//     launch a function literal whose top-level statements defer a panic
//     guard: pb.capture() (the worker pool's panicBox), recoverExec, or a
//     closure that calls recover(). Launching a named function is flagged
//     too — the guard must be visible at the launch site, the way
//     internal/parallel wraps every worker.
//
//   - In package sparse, a function with an error result that directly
//     calls parallel.For/Run/Tasks must defer a panic guard (normally
//     `defer recoverExec(&err)`): the pool ferries worker panics to the
//     joining goroutine as WorkerPanic and rethrows, so a fan-out kernel
//     without a guard re-crashes the caller instead of parking the panic
//     as an error.
package panicpathcheck

import (
	"go/ast"
	"go/types"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the panicpathcheck entry point.
var Analyzer = &lint.Analyzer{
	Name: "panicpathcheck",
	Doc:  "goroutine launches and error-returning fan-out kernels must be guarded by recoverExec/panicBox",
	Run:  run,
}

// poolEntryPoints are the worker-pool fan-out calls of internal/parallel.
var poolEntryPoints = map[string]bool{"For": true, "Run": true, "Tasks": true}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Commands and examples run at process scope; a panic there is the
		// process's own business.
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(pass, fd)
			checkFanOutKernel(pass, fd)
		}
	}
	return nil
}

// checkGoStmts flags unguarded goroutine launches anywhere in the function.
func checkGoStmts(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			pass.Reportf(g.Pos(), "go statement must launch a guarded function literal (defer pb.capture() / recover guard visible at the launch site)")
			return true
		}
		if !hasDeferredGuard(pass, lit.Body) {
			pass.Reportf(g.Pos(), "go statement launches an unguarded function literal; defer pb.capture() or a recover guard so a panic cannot kill the process")
		}
		return true
	})
}

// checkFanOutKernel flags sparse kernels with an error result that fan out
// through the worker pool without a deferred panic guard.
func checkFanOutKernel(pass *lint.Pass, fd *ast.FuncDecl) {
	if pass.Pkg.Name() != "sparse" || !hasErrorResult(pass, fd) {
		return
	}
	var fanOut string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A pool call inside a nested literal belongs to that closure's
			// own dynamic scope; rule on direct calls only.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(pass.TypesInfo, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "parallel" && poolEntryPoints[fn.Name()] {
			fanOut = fn.Name()
		}
		return true
	})
	if fanOut == "" {
		return
	}
	if !hasDeferredGuard(pass, fd.Body) {
		pass.Reportf(fd.Name.Pos(), "kernel %s fans out via parallel.%s but has no deferred panic guard (defer recoverExec(&err))", fd.Name.Name, fanOut)
	}
}

// hasErrorResult reports whether the function declares an error result to
// park a recovered panic in.
func hasErrorResult(pass *lint.Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	results := fn.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if lint.IsErrorType(results.At(i).Type()) {
			return true
		}
	}
	return false
}

// hasDeferredGuard reports whether the function body (not descending into
// nested literals, whose defers run on the wrong goroutine/frame) defers a
// panic guard: recoverExec, a *.capture() method, or a closure calling
// recover().
func hasDeferredGuard(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if isGuardCall(pass, n.Call) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// isGuardCall classifies a deferred call as a panic guard.
func isGuardCall(pass *lint.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "recoverExec" {
			return true
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "capture" || fun.Sel.Name == "recoverExec" {
			return true
		}
	case *ast.FuncLit:
		return callsRecover(pass, fun.Body)
	}
	return false
}

// callsRecover reports whether the block calls the recover builtin.
func callsRecover(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin && id.Name == "recover" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isTestFile reports whether the file is a _test.go file (test goroutines
// fail their test, not the production process).
func isTestFile(pass *lint.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}

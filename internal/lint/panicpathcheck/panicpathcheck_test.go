package panicpathcheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/linttest"
	"github.com/grblas/grb/internal/lint/panicpathcheck"
)

func TestPanicPathCheck(t *testing.T) {
	linttest.Run(t, "testdata", panicpathcheck.Analyzer, "sparse")
}

// Package parallel is the panicpathcheck corpus stub of the worker pool.
package parallel

// Run partitions work across workers.
func Run(parts []int, threads int, body func(part, lo, hi int)) {}

// For splits [0,n) across workers.
func For(n, threads int, body func(lo, hi int)) {}

// Tasks runs n independent tasks.
func Tasks(n, threads int, run func(i int)) {}

// Package sparse is the panicpathcheck corpus: fan-out kernels with and
// without panic guards, and goroutine launches in every guard shape.
package sparse

import "parallel"

func recoverExec(err *error) {}

// GoodKernelEx guards with the canonical recoverExec defer.
func GoodKernelEx(parts []int) (err error) {
	defer recoverExec(&err)
	parallel.Run(parts, 2, func(part, lo, hi int) {})
	return nil
}

// GoodInlineGuard guards with an inline recover closure.
func GoodInlineGuard(parts []int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	parallel.Run(parts, 2, func(part, lo, hi int) {})
	return err
}

// BadKernelEx fans out with an error result and no guard.
func BadKernelEx(parts []int) error { // want `no deferred panic guard`
	parallel.Run(parts, 2, func(part, lo, hi int) {})
	return nil
}

// BadTasks covers the Tasks entry point.
func BadTasks(n int) error { // want `no deferred panic guard`
	parallel.Tasks(n, 2, func(i int) {})
	return nil
}

// NoErrorNoGuard has no error result: the pool itself ferries panics, and
// there is no error to park them in — out of rule scope.
func NoErrorNoGuard(parts []int) {
	parallel.Run(parts, 2, func(part, lo, hi int) {})
}

// NestedPoolCall only fans out inside a nested literal; the rule is on
// direct calls.
func NestedPoolCall(parts []int) error {
	f := func() {
		parallel.Run(parts, 2, func(part, lo, hi int) {})
	}
	f()
	return nil
}

type box struct{}

func (b *box) capture() {}

// GoodGoCapture launches a literal guarded by the panicBox capture defer.
func GoodGoCapture() {
	b := &box{}
	go func() {
		defer b.capture()
	}()
}

// GoodGoRecover launches a literal guarded by an inline recover closure.
func GoodGoRecover(ch chan int) {
	go func() {
		defer func() { recover() }()
		ch <- 1
	}()
}

// BadGo launches an unguarded literal.
func BadGo(ch chan int) {
	go func() { // want `unguarded function literal`
		ch <- 1
	}()
}

func named() {}

// BadGoNamed launches a named function: the guard is not visible at the
// launch site.
func BadGoNamed() {
	go named() // want `guarded function literal`
}

// IgnoredGo documents a deliberate suppression.
func IgnoredGo(ch chan int) {
	go func() { //grblint:ignore panicpathcheck -- corpus: deliberate suppressed case
		ch <- 1
	}()
}

// Package sitesbad is the failing half of the sitecheck corpus: a dead
// site (registered, never probed) and a live site the battery does not
// sweep.
package sitesbad

import "faults"

var siteDead = faults.Register("bad.dead") // want `registered but never exercised`

var siteUncovered = faults.Register("bad.uncovered") // want `not covered by the chaos battery`

// Kernel probes only the uncovered site.
func Kernel() error { return siteUncovered.Check() }

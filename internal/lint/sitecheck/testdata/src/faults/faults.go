// Package faults is the sitecheck corpus stub of the fault-injection
// registry.
package faults

// Site is one registered injection point.
type Site struct{ name string }

// Register declares a site at package init.
func Register(name string) *Site { return &Site{name: name} }

// Check probes the site.
func (s *Site) Check() error { return nil }

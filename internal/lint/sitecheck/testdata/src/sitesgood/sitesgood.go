// Package sitesgood is the clean half of the sitecheck corpus: a live,
// battery-covered site, plus the chaos manifest — including one stale
// entry and coverage for sitesbad's dead site.
package sitesgood

import "faults"

var siteAlive = faults.Register("good.alive")

// Kernel probes the site in non-test code.
func Kernel() error { return siteAlive.Check() }

// chaosBatterySites is the battery's static coverage manifest.
var chaosBatterySites = []string{
	"good.alive",
	"bad.dead",
	"good.stale", // want `does not match any registered fault site`
}

package sitecheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/linttest"
	"github.com/grblas/grb/internal/lint/sitecheck"
)

func TestSiteCheck(t *testing.T) {
	linttest.RunProgram(t, "testdata", sitecheck.Analyzer, "faults", "sitesgood", "sitesbad")
}

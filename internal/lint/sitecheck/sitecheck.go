// Package sitecheck enforces the fault-injection coverage invariants
// (DESIGN.md "Fault injection & chaos"): every faults.Register site must be
// live — referenced somewhere in non-test code, where its Check/charge
// probe actually runs — and every site must be swept by the chaos battery,
// which declares its coverage in a package-level string-slice variable
// named chaosBatterySites (the battery itself asserts at runtime that the
// manifest equals faults.Sites(), so the static list cannot drift).
//
// Both failure modes are diagnostics: a dead site is hardening theater
// (registered, never probed), and an unswept site is a fault path no chaos
// run has ever executed. A manifest entry naming an unregistered site is
// flagged as stale.
//
// This is a program-level analyzer (lint.Analyzer.ProgramRun): registration
// happens in internal/sparse, probing in kernels across packages, and the
// manifest in the root package's chaos battery, so no single package can
// decide the invariant. Registrations in _test.go files are exempt (the
// faults package's own tests register scratch sites).
package sitecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the sitecheck entry point.
var Analyzer = &lint.Analyzer{
	Name:       "sitecheck",
	Doc:        "every faults.Register site must be probed in non-test code and swept by the chaos battery manifest",
	ProgramRun: run,
}

// manifestVar is the conventional name of the chaos battery's coverage
// list.
const manifestVar = "chaosBatterySites"

// site is one non-test faults.Register call.
type site struct {
	name string
	pos  token.Pos
	obj  types.Object // the variable the site is bound to, nil if unbound
	used bool
}

func run(pass *lint.ProgramPass) error {
	var sites []*site
	byObj := map[types.Object]*site{}
	manifest := map[string]token.Pos{}
	haveManifest := false

	// Pass 1: collect registrations (non-test files) and manifests (any
	// file — the battery lives in a _test.go).
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Syntax {
			testFile := isTestFile(pass.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ValueSpec:
					for i, v := range n.Values {
						call, ok := ast.Unparen(v).(*ast.CallExpr)
						if ok && isRegister(pkg, call) && !testFile {
							s := newSite(pass, pkg, call, specObj(pkg, n, i))
							if s != nil {
								sites = append(sites, s)
								if s.obj != nil {
									byObj[s.obj] = s
								}
							}
						}
					}
					if len(n.Names) == 1 && n.Names[0].Name == manifestVar {
						haveManifest = collectManifest(n.Values, manifest) || haveManifest
					}
				case *ast.AssignStmt:
					if testFile || len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, v := range n.Rhs {
						call, ok := ast.Unparen(v).(*ast.CallExpr)
						if !ok || !isRegister(pkg, call) {
							continue
						}
						var obj types.Object
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							obj = identObject(pkg, id)
						}
						s := newSite(pass, pkg, call, obj)
						if s != nil {
							sites = append(sites, s)
							if s.obj != nil {
								byObj[s.obj] = s
							}
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: mark sites referenced from non-test code.
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Syntax {
			if isTestFile(pass.Fset, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if s := byObj[pkg.TypesInfo.Uses[id]]; s != nil {
					s.used = true
				}
				return true
			})
		}
	}

	for _, s := range sites {
		if !s.used {
			pass.Reportf(s.pos, "fault site %q is registered but never exercised in non-test code (dead site)", s.name)
		}
		if _, ok := manifest[s.name]; !ok {
			pass.Reportf(s.pos, "fault site %q is not covered by the chaos battery (missing from %s)", s.name, manifestVar)
		}
	}
	registered := map[string]bool{}
	for _, s := range sites {
		registered[s.name] = true
	}
	for name, pos := range manifest {
		if !registered[name] {
			pass.Reportf(pos, "%s entry %q does not match any registered fault site (stale)", manifestVar, name)
		}
	}
	return nil
}

// newSite builds the site record from a Register call; a non-literal name
// is reported (the chaos grammar addresses sites by name, so the name must
// be greppable) and not tracked.
func newSite(pass *lint.ProgramPass, pkg *lint.Package, call *ast.CallExpr, obj types.Object) *site {
	if len(call.Args) != 1 {
		return nil
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		pass.Reportf(call.Pos(), "faults.Register argument must be a string literal so chaos specs can address the site")
		return nil
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil
	}
	return &site{name: name, pos: call.Pos(), obj: obj}
}

// isRegister reports whether the call is faults.Register.
func isRegister(pkg *lint.Package, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(pkg.TypesInfo, call)
	return fn != nil && fn.Name() == "Register" && fn.Pkg() != nil && fn.Pkg().Name() == "faults"
}

// collectManifest folds a chaosBatterySites composite literal's string
// entries into the manifest set, reporting whether a literal was present.
func collectManifest(values []ast.Expr, manifest map[string]token.Pos) bool {
	found := false
	for _, v := range values {
		cl, ok := ast.Unparen(v).(*ast.CompositeLit)
		if !ok {
			continue
		}
		found = true
		for _, elt := range cl.Elts {
			lit, ok := ast.Unparen(elt).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				continue
			}
			if name, err := strconv.Unquote(lit.Value); err == nil {
				if _, dup := manifest[name]; !dup {
					manifest[name] = lit.Pos()
				}
			}
		}
	}
	return found
}

// specObj returns the object bound by position i of a ValueSpec.
func specObj(pkg *lint.Package, spec *ast.ValueSpec, i int) types.Object {
	if i < len(spec.Names) {
		return identObject(pkg, spec.Names[i])
	}
	return nil
}

// identObject resolves an identifier to its object (definition or use).
func identObject(pkg *lint.Package, id *ast.Ident) types.Object {
	if o := pkg.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pkg.TypesInfo.Uses[id]
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// Package grb is a miniature stub of the GraphBLAS API surface: just enough
// signatures for the infocheck corpus. The analyzer matches by package name,
// so this stub stands in for the real module.
package grb

// Info mirrors the GraphBLAS return-code enumeration.
type Info int

const (
	Success Info = iota
	NoValue
	InvalidValue
)

// WaitMode mirrors the §V completion modes.
type WaitMode int

const (
	Complete WaitMode = iota
	Materialize
)

// Matrix is a stub GraphBLAS matrix.
type Matrix struct{ code Info }

func NewMatrix(rows, cols int) (*Matrix, error)              { return &Matrix{}, nil }
func (m *Matrix) Wait(mode WaitMode) error                   { return nil }
func (m *Matrix) Nvals() (int, error)                        { return 0, nil }
func (m *Matrix) ExtractElement(i, j int) (int, bool, error) { return 0, false, nil }
func (m *Matrix) Code() Info                                 { return m.code }

func Finalize() error { return nil }

// Package a is the infocheck corpus: every way of discarding a grb error or
// Info value, plus the observations and suppressions that must stay silent.
package a

import "grb"

func discards(m *grb.Matrix) {
	m.Wait(grb.Complete)       // want `error result of \(\*grb\.Matrix\)\.Wait is discarded by expression statement`
	go m.Wait(grb.Complete)    // want `error result of \(\*grb\.Matrix\)\.Wait is discarded by go statement`
	defer m.Wait(grb.Complete) // want `error result of \(\*grb\.Matrix\)\.Wait is discarded by defer statement`
	_ = m.Wait(grb.Complete)   // want `error result of \(\*grb\.Matrix\)\.Wait is assigned to _`
	grb.Finalize()             // want `error result of grb\.Finalize is discarded by expression statement`
}

func tupleDiscards(m *grb.Matrix) int {
	n, _ := m.Nvals()                  // want `error result of \(\*grb\.Matrix\)\.Nvals is assigned to _`
	v, ok, _ := m.ExtractElement(0, 0) // want `error result of \(\*grb\.Matrix\)\.ExtractElement is assigned to _`
	_, _ = v, ok
	return n
}

func infoDiscards(m *grb.Matrix) {
	code := m.Code()
	_ = code     // want `grb\.Info value is assigned to _`
	_ = m.Code() // want `grb\.Info result of \(\*grb\.Matrix\)\.Code is assigned to _`
	m.Code()     // want `grb\.Info result of \(\*grb\.Matrix\)\.Code is discarded by expression statement`
}

func observed(m *grb.Matrix) error {
	if err := m.Wait(grb.Complete); err != nil { // checked: silent
		return err
	}
	n, err := m.Nvals() // stored: silent
	if err != nil || n < 0 {
		return err
	}
	if m.Code() != grb.Success { // compared: silent
		return nil
	}
	return m.Wait(grb.Materialize) // returned: silent
}

func suppressed(m *grb.Matrix) {
	_ = m.Wait(grb.Complete) //grblint:ignore infocheck -- deliberate: error observed via Code() below
	//grblint:ignore infocheck -- standalone form covers the next line
	_ = grb.Finalize()
}

// nonAPI calls are out of scope even when they return errors.
func nonAPI() {
	_ = localErr()
}

func localErr() error { return nil }

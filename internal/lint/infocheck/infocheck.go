// Package infocheck implements the grblint analyzer that enforces the
// GraphBLAS error-model discipline of §V: every expression yielding a
// grb.Info or an error produced by the grb/lagraph API must be observed —
// checked, compared, stored, or returned. Discarding one (a bare expression
// statement, an assignment to the blank identifier, or a go/defer statement
// whose results vanish) silently swallows a deferred execution error, which
// is exactly the failure mode the paper's nonblocking mode makes possible.
package infocheck

import (
	"go/ast"
	"go/types"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the infocheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "infocheck",
	Doc: "report discarded grb.Info values and discarded errors from grb/lagraph API calls; " +
		"an unobserved result can silently swallow a deferred execution error (GraphBLAS 2.0 §V)",
	Run: run,
}

// apiPackages are the package names whose error results carry the GraphBLAS
// error model. Matching is by name so the analyzer works against both the
// real repo and the testdata stubs.
var apiPackages = map[string]bool{"grb": true, "lagraph": true}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "expression statement")
				}
			case *ast.GoStmt:
				checkDiscardedCall(pass, s.Call, "go statement")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, s.Call, "defer statement")
			case *ast.AssignStmt:
				checkAssign(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports a call whose entire result list is dropped, if
// any result is a must-observe type.
func checkDiscardedCall(pass *lint.Pass, call *ast.CallExpr, how string) {
	names := mustObserveResults(pass, call)
	if len(names) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "%s result of %s is discarded by %s; check, compare, or return it",
		names[0], calleeName(pass.TypesInfo, call), how)
}

// checkAssign reports blank-identifier discards of must-observe results.
func checkAssign(pass *lint.Pass, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple assignment: v, ok, _ := call().
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		results := lint.ResultTuple(pass.TypesInfo, call)
		if results == nil || results.Len() != len(s.Lhs) || !isAPICall(pass.TypesInfo, call) {
			return
		}
		for i := 0; i < results.Len(); i++ {
			if isBlank(s.Lhs[i]) && mustObserve(results.At(i).Type()) {
				pass.Reportf(s.Lhs[i].Pos(), "%s result of %s is assigned to _; check, compare, or return it",
					typeLabel(results.At(i).Type()), calleeName(pass.TypesInfo, call))
			}
		}
		return
	}
	// Parallel assignment: each LHS pairs with one single-valued RHS.
	for i := range s.Lhs {
		if i >= len(s.Rhs) || !isBlank(s.Lhs[i]) {
			continue
		}
		if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok {
			if names := mustObserveResults(pass, call); len(names) > 0 {
				pass.Reportf(s.Lhs[i].Pos(), "%s result of %s is assigned to _; check, compare, or return it",
					names[0], calleeName(pass.TypesInfo, call))
			}
			continue
		}
		// A non-call expression of type Info discarded via _ (e.g. a
		// stored code) is equally unobserved.
		if tv, ok := pass.TypesInfo.Types[s.Rhs[i]]; ok && isInfo(tv.Type) {
			pass.Reportf(s.Lhs[i].Pos(), "grb.Info value is assigned to _; check, compare, or return it")
		}
	}
}

// mustObserveResults returns labels for the must-observe results of a call
// into the grb/lagraph API (empty when the call is out of scope or carries
// no such result).
func mustObserveResults(pass *lint.Pass, call *ast.CallExpr) []string {
	if !isAPICall(pass.TypesInfo, call) {
		return nil
	}
	results := lint.ResultTuple(pass.TypesInfo, call)
	if results == nil {
		return nil
	}
	var names []string
	for i := 0; i < results.Len(); i++ {
		if mustObserve(results.At(i).Type()) {
			names = append(names, typeLabel(results.At(i).Type()))
		}
	}
	return names
}

// isAPICall reports whether the call resolves to a function or method
// declared in a GraphBLAS API package.
func isAPICall(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && apiPackages[fn.Pkg().Name()]
}

func mustObserve(t types.Type) bool { return lint.IsErrorType(t) || isInfo(t) }

func isInfo(t types.Type) bool { return lint.IsNamed(t, "grb", "Info") }

func typeLabel(t types.Type) string {
	if isInfo(t) {
		return "grb.Info"
	}
	return "error"
}

// calleeName renders the called function for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := lint.CalleeFunc(info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "(" + sig.Recv().Type().String() + ")." + fn.Name()
		}
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return "call"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

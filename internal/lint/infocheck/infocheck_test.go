package infocheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/infocheck"
	"github.com/grblas/grb/internal/lint/linttest"
)

func TestInfocheck(t *testing.T) {
	linttest.Run(t, "testdata", infocheck.Analyzer, "a")
}

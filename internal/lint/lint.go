// Package lint is a minimal, dependency-free reimplementation of the slice
// of golang.org/x/tools/go/analysis that grblint needs: an Analyzer runs
// over one type-checked package at a time and reports position-anchored
// diagnostics. The repo builds offline (no module proxy), so the x/tools
// framework cannot be vendored; this package keeps the same shape — an
// Analyzer value with a Run(*Pass) hook — so the grblint analyzers could
// migrate to the real framework without rewrites. One extension the x/tools
// framework lacks: an Analyzer may instead set ProgramRun to see every
// loaded package in one pass (used by sitecheck, whose "every fault site is
// exercised" invariant spans the module).
//
// Suppression convention (documented in DESIGN.md): a comment of the form
//
//	//grblint:ignore name1,name2 -- optional reason
//
// silences the named analyzers on its own source line (trailing comment)
// or, when it stands alone on a line, on the next line. The runner applies
// suppression after Run, so analyzers never need to know about it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer describes one static check. Exactly one of Run and ProgramRun
// is set: Run analyzes one package at a time (the common case, and the
// shape of the x/tools framework), while ProgramRun sees every loaded
// package at once — for whole-program invariants such as "every registered
// fault site is exercised somewhere", which no single package can decide.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //grblint:ignore comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the check on one package and reports findings through
	// pass.Reportf. Nil for program-level analyzers.
	Run func(pass *Pass) error
	// ProgramRun performs the check across all loaded packages at once.
	// Nil for per-package analyzers.
	ProgramRun func(pass *ProgramPass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries every loaded package through a program-level
// analyzer's ProgramRun. All packages share one token.FileSet (the loader
// guarantees this), so positions are comparable across units.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is the comment prefix that suppresses diagnostics.
const ignoreDirective = "//grblint:ignore"

// Suppression is one parsed //grblint:ignore directive, exposed for the
// `grblint -audit-ignores` mode: every suppression is expected to carry a
// reason after `--`, and the audit fails the build when one does not.
type Suppression struct {
	Pos    token.Position
	Names  []string
	Reason string
}

// SuppressionsIn parses every ignore directive in the files, in source
// order.
func SuppressionsIn(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				reason := ""
				if i := strings.Index(rest, "--"); i >= 0 {
					reason = strings.TrimSpace(rest[i+2:])
					rest = rest[:i]
				}
				var names []string
				for _, n := range strings.Split(rest, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				if len(names) == 0 {
					continue
				}
				out = append(out, Suppression{
					Pos:    fset.Position(c.Pos()),
					Names:  names,
					Reason: reason,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// suppressedLines maps filename -> line -> set of analyzer names silenced
// on that line.
type suppressedLines map[string]map[int]map[string]bool

// collectSuppressions scans the files' comments for ignore directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressedLines {
	sup := suppressedLines{}
	add := func(file string, line int, names []string) {
		byLine := sup[file]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			sup[file] = byLine
		}
		set := byLine[line]
		if set == nil {
			set = map[string]bool{}
			byLine[line] = set
		}
		for _, n := range names {
			set[n] = true
		}
	}
	for _, s := range SuppressionsIn(fset, files) {
		// The directive covers its own line (trailing form) and the
		// following line (standalone form).
		add(s.Pos.Filename, s.Pos.Line, s.Names)
		add(s.Pos.Filename, s.Pos.Line+1, s.Names)
	}
	return sup
}

func (s suppressedLines) covers(d Diagnostic) bool {
	byLine, ok := s[d.Pos.Filename]
	if !ok {
		return false
	}
	set, ok := byLine[d.Pos.Line]
	if !ok {
		return false
	}
	return set[d.Analyzer]
}

// Run applies the per-package analyzers to one loaded package and returns
// the surviving (non-suppressed) diagnostics, sorted by position. Analyzers
// without a Run hook (program-level ones) are skipped.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunTimed(pkg, analyzers, nil)
}

// RunTimed is Run with an optional per-analyzer wall-time callback, called
// once per analyzer with the time its Run took on this package. grblint
// aggregates these across packages for its timing report.
func RunTimed(pkg *Package, analyzers []*Analyzer, timing func(name string, d time.Duration)) ([]Diagnostic, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Syntax)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		start := time.Now()
		err := a.Run(pass)
		if timing != nil {
			timing(a.Name, time.Since(start))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range pass.diags {
			if !sup.covers(d) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// RunProgram applies the program-level analyzers to the whole load at once.
// Suppressions from every package apply (filenames are disjoint across
// units, so merging the per-package maps is sound). Analyzers without a
// ProgramRun hook are skipped.
func RunProgram(pkgs []*Package, analyzers []*Analyzer, timing func(name string, d time.Duration)) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	sup := suppressedLines{}
	for _, pkg := range pkgs {
		for file, byLine := range collectSuppressions(pkg.Fset, pkg.Syntax) {
			if sup[file] == nil {
				sup[file] = byLine
				continue
			}
			for line, names := range byLine {
				if sup[file][line] == nil {
					sup[file][line] = names
					continue
				}
				for n := range names {
					sup[file][line][n] = true
				}
			}
		}
	}
	var out []Diagnostic
	for _, a := range analyzers {
		if a.ProgramRun == nil {
			continue
		}
		pass := &ProgramPass{
			Analyzer: a,
			Fset:     pkgs[0].Fset,
			Pkgs:     pkgs,
		}
		start := time.Now()
		err := a.ProgramRun(pass)
		if timing != nil {
			timing(a.Name, time.Since(start))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !sup.covers(d) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---- shared type-matching helpers used by the analyzers ----

// NamedFrom unwraps pointers and aliases down to a *types.Named, or nil.
func NamedFrom(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (possibly behind pointers) is the named type
// pkgName.typeName. Matching is by package *name* rather than import path so
// the analyzers work identically against the real repo and against the small
// stub packages in each analyzer's testdata corpus.
func IsNamed(t types.Type, pkgName string, typeNames ...string) bool {
	n := NamedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Name() != pkgName {
		return false
	}
	// Generic instantiations report the origin's object name.
	name := n.Origin().Obj().Name()
	for _, want := range typeNames {
		if name == want {
			return true
		}
	}
	return false
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// CalleeFunc resolves the *types.Func a call expression invokes (method or
// package-level function), or nil for builtins, conversions, and calls of
// function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Strip explicit generic instantiation: f[T](...) / f[T1, T2](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier pkg.Fn.
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// ResultTuple returns the result tuple of the function a call invokes, or
// nil when the call is a conversion or resolves to no function signature.
func ResultTuple(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

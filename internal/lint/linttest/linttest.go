// Package linttest is the analysistest stand-in for internal/lint: it runs
// one analyzer over a small corpus package under testdata/src/<pkg> and
// checks the produced diagnostics against `// want "regexp"` comments in the
// corpus sources, exactly like golang.org/x/tools/go/analysis/analysistest
// (which the offline build cannot vendor).
//
// Corpus layout mirrors analysistest: testdata/src is treated as a source
// root, so a corpus file may `import "grb"` and the harness resolves it to
// testdata/src/grb. Standard-library imports fall through to the compiler's
// source importer.
//
// Expectations are trailing comments on the offending line:
//
//	_ = m.Wait(grb.Complete) // want `error result .* is discarded`
//
// Multiple expectations on one line are allowed (`// want "a" "b"`). A line
// carrying a //grblint:ignore directive must produce no diagnostic at all —
// that is the harness's suppressed-case check.
//
// Program-level analyzers (lint.Analyzer.ProgramRun) use RunProgram with
// the list of corpus packages forming the program; // want expectations may
// then live in any of them.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"github.com/grblas/grb/internal/lint"
)

// TB is the slice of *testing.T the harness needs. Taking an interface
// instead of the concrete type lets linttest's own tests substitute a
// recording fake and assert what the harness reports (see linttest_test.go).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatal(args ...any)
	Fatalf(format string, args ...any)
}

// Run analyzes testdata/src/<pkg> with the analyzer and reports every
// mismatch between produced diagnostics and // want expectations as a test
// error.
func Run(t TB, testdata string, a *lint.Analyzer, pkg string) {
	t.Helper()
	units, files, fset, err := loadCorpus(testdata, []string{pkg})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(units[0], []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, fset, units, files, diags)
}

// RunProgram analyzes the corpus packages together as one program with a
// program-level analyzer (lint.Analyzer.ProgramRun), checking diagnostics
// against // want expectations across all of them.
func RunProgram(t TB, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	units, files, fset, err := loadCorpus(testdata, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunProgram(units, []*lint.Analyzer{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, fset, units, files, diags)
}

// loadCorpus parses and type-checks the named corpus packages under
// testdata/src, sharing one fset and importer so cross-package positions
// and types line up.
func loadCorpus(testdata string, pkgs []string) ([]*lint.Package, []string, *token.FileSet, error) {
	fset := token.NewFileSet()
	imp := &corpusImporter{
		root:     filepath.Join(testdata, "src"),
		fset:     fset,
		packages: map[string]*types.Package{},
	}
	imp.fallback = importer.ForCompiler(fset, "source", nil)

	var units []*lint.Package
	var allFiles []string
	for _, pkg := range pkgs {
		files, syntax, err := imp.parseDir(pkg)
		if err != nil {
			return nil, nil, nil, err
		}
		info := lint.NewTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkg, fset, syntax, info)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("type-checking corpus %s: %v", pkg, err)
		}
		imp.packages[pkg] = tpkg
		units = append(units, &lint.Package{PkgPath: pkg, Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info})
		allFiles = append(allFiles, files...)
	}
	return units, allFiles, fset, nil
}

// checkWants reports every mismatch between the produced diagnostics and
// the corpus's // want expectations.
func checkWants(t TB, fset *token.FileSet, units []*lint.Package, files []string, diags []lint.Diagnostic) {
	t.Helper()
	var syntax []*ast.File
	for _, u := range units {
		syntax = append(syntax, u.Syntax...)
	}
	wants, err := collectWants(fset, syntax)
	if err != nil {
		t.Fatal(err)
	}
	matched := map[*want]bool{}
	for _, d := range diags {
		w := wants.match(d)
		if w == nil {
			t.Errorf("unexpected diagnostic:\n  %s", d)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: no diagnostic matched `// want %q`", relPath(w.file, files), w.line, w.re.String())
		}
	}
}

// want is one expectation parsed from a corpus comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

type wantList []*want

func (ws wantList) match(d lint.Diagnostic) *want {
	for _, w := range ws {
		if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// wantArg extracts the quoted or backquoted expectation strings from a
// `// want` comment body.
var wantArg = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses `// want "re"...` trailing comments from the corpus.
func collectWants(fset *token.FileSet, files []*ast.File) (wantList, error) {
	var out wantList
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantArg.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment: %s", pos, c.Text)
				}
				for _, q := range args {
					body := q[1 : len(q)-1]
					if q[0] == '"' {
						body = strings.ReplaceAll(body, `\"`, `"`)
						body = strings.ReplaceAll(body, `\\`, `\`)
					}
					re, err := regexp.Compile(body)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, body, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out, nil
}

func relPath(file string, files []string) string {
	for _, f := range files {
		if f == file {
			return filepath.Base(f)
		}
	}
	return file
}

// corpusImporter resolves imports against testdata/src first (corpus stub
// packages such as "grb" or "sparse"), then falls back to the compiler's
// source importer for the standard library.
type corpusImporter struct {
	root     string
	fset     *token.FileSet
	packages map[string]*types.Package
	fallback types.Importer
}

func (ci *corpusImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.packages[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ci.root, path)
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return ci.fallback.Import(path)
	}
	_, syntax, err := ci.parseDir(path)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: ci}
	p, err := conf.Check(path, ci.fset, syntax, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking corpus dependency %s: %v", path, err)
	}
	ci.packages[path] = p
	return p, nil
}

// parseDir parses every .go file under testdata/src/<path>.
func (ci *corpusImporter) parseDir(path string) ([]string, []*ast.File, error) {
	dir := filepath.Join(ci.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("corpus package %s: %v", path, err)
	}
	var files []string
	var syntax []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(ci.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, name)
		syntax = append(syntax, f)
	}
	if len(syntax) == 0 {
		return nil, nil, fmt.Errorf("corpus package %s: no .go files in %s", path, dir)
	}
	return files, syntax, nil
}

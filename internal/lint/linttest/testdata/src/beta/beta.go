// Package beta is half of the linttest multi-package program corpus.
package beta

var Progmark = 1 // want `program mark across 2 packages`

// Value exists so alpha has something to import.
func Value() int { return Progmark }

// Package marks is the linttest self-test corpus for diagnostic position
// matching and //grblint:ignore scoping: markcheck (defined in
// linttest_test.go) reports at every identifier named markme.
package marks

var markme = 1 // want `mark at markme`

var a = markme // want `mark at markme`

var b = markme //grblint:ignore markcheck -- trailing-form suppression

//grblint:ignore markcheck -- standalone-form suppression covers next line
var c = markme

var d = markme // want `mark at markme`

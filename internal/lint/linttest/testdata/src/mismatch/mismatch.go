// Package mismatch is the linttest self-test corpus for expectation
// mismatches: the want below sits on the wrong line, so the harness must
// report both an unexpected diagnostic (at markme) and an unmatched want.
package mismatch

var markme = 1

var x = 2 // want `mark at markme`

// Package alpha is half of the linttest multi-package program corpus; it
// imports beta so the harness's shared corpus importer is exercised.
package alpha

import "beta"

var progmark = beta.Value() // want `program mark across 2 packages`

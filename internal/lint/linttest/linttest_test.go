// These tests assert the behavior of the linttest harness itself —
// diagnostic position matching, //grblint:ignore scoping, and multi-package
// program corpora — by driving it with a recording TB fake and two tiny
// purpose-built analyzers.
package linttest_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"github.com/grblas/grb/internal/lint"
	"github.com/grblas/grb/internal/lint/linttest"
)

// markcheck reports at every identifier named markme. It exists purely to
// give the harness something position-anchored to match.
var markcheck = &lint.Analyzer{
	Name: "markcheck",
	Doc:  "test analyzer: reports every identifier named markme",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "markme" {
					pass.Reportf(id.Pos(), "mark at %s", id.Name)
				}
				return true
			})
		}
		return nil
	},
}

// progmark is a program-level test analyzer: it reports at every
// package-level value named (case-insensitively) progmark, embedding the
// package count in the message to prove it saw the whole program at once.
var progmark = &lint.Analyzer{
	Name: "progmark",
	Doc:  "test analyzer: reports progmark values across the whole program",
	ProgramRun: func(pass *lint.ProgramPass) error {
		for _, pkg := range pass.Pkgs {
			for _, f := range pkg.Syntax {
				for _, decl := range f.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok {
						continue
					}
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							if strings.EqualFold(name.Name, "progmark") {
								pass.Reportf(name.Pos(), "program mark across %d packages", len(pass.Pkgs))
							}
						}
					}
				}
			}
		}
		return nil
	},
}

// fakeTB records what the harness reports instead of failing the test.
type fakeTB struct {
	errors []string
	fatal  string
}

type fatalSentinel struct{}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Fatal(args ...any) {
	f.fatal = fmt.Sprint(args...)
	panic(fatalSentinel{})
}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.fatal = fmt.Sprintf(format, args...)
	panic(fatalSentinel{})
}

// run invokes fn, swallowing the harness's Fatal (which panics with a
// sentinel in the fake, standing in for testing.T's runtime.Goexit).
func (f *fakeTB) run(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fatalSentinel); !ok {
				panic(r)
			}
		}
	}()
	fn()
}

// TestPositionAndIgnoreScoping drives Run over a corpus where every
// expectation should be satisfied: three diagnostics matched by wants, one
// silenced by a trailing ignore, one by a standalone ignore. A clean run
// must report nothing.
func TestPositionAndIgnoreScoping(t *testing.T) {
	f := &fakeTB{}
	f.run(func() { linttest.Run(f, "testdata", markcheck, "marks") })
	if f.fatal != "" {
		t.Fatalf("harness Fatal'd: %s", f.fatal)
	}
	for _, e := range f.errors {
		t.Errorf("clean corpus produced harness error: %s", e)
	}
}

// TestMismatchReporting drives Run over a corpus whose only want sits on
// the wrong line, and asserts the harness reports both failure modes: the
// diagnostic nothing expected, and the expectation nothing matched.
func TestMismatchReporting(t *testing.T) {
	f := &fakeTB{}
	f.run(func() { linttest.Run(f, "testdata", markcheck, "mismatch") })
	if f.fatal != "" {
		t.Fatalf("harness Fatal'd: %s", f.fatal)
	}
	var unexpected, unmatched bool
	for _, e := range f.errors {
		if strings.Contains(e, "unexpected diagnostic") && strings.Contains(e, "mark at markme") {
			unexpected = true
		}
		if strings.Contains(e, "no diagnostic matched") {
			unmatched = true
		}
	}
	if !unexpected {
		t.Errorf("harness did not report the unexpected diagnostic; got %q", f.errors)
	}
	if !unmatched {
		t.Errorf("harness did not report the unmatched want; got %q", f.errors)
	}
	if len(f.errors) != 2 {
		t.Errorf("want exactly 2 harness errors, got %d: %q", len(f.errors), f.errors)
	}
}

// TestMultiPackageProgram drives RunProgram over a two-package corpus with
// a cross-package import, and asserts a program-level analyzer sees both
// packages in one pass (the diagnostics embed the package count).
func TestMultiPackageProgram(t *testing.T) {
	f := &fakeTB{}
	f.run(func() { linttest.RunProgram(f, "testdata", progmark, "beta", "alpha") })
	if f.fatal != "" {
		t.Fatalf("harness Fatal'd: %s", f.fatal)
	}
	for _, e := range f.errors {
		t.Errorf("program corpus produced harness error: %s", e)
	}
}

// TestMissingCorpusFatals asserts the harness aborts (Fatal, not Errorf)
// when the corpus package does not exist.
func TestMissingCorpusFatals(t *testing.T) {
	f := &fakeTB{}
	f.run(func() { linttest.Run(f, "testdata", markcheck, "no-such-pkg") })
	if f.fatal == "" {
		t.Fatal("missing corpus did not Fatal")
	}
	if !strings.Contains(f.fatal, "no-such-pkg") {
		t.Errorf("Fatal message does not name the corpus: %s", f.fatal)
	}
}

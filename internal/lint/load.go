package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked analysis unit. In-package test files are
// folded into their package's unit; external _test packages (package foo_test)
// form a unit of their own, so `grblint ./...` sees every file `go test`
// would compile.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// goList enumerates the packages matching patterns.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles,TestGoFiles,XTestGoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load enumerates, parses and type-checks the packages matching the go
// package patterns (e.g. "./..."), including their test files.
func Load(patterns []string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer type-checks dependencies (stdlib and module-local
	// packages alike) from source; one shared instance caches them across
	// units.
	imp := importer.ForCompiler(fset, "source", nil)

	var units []*Package
	for _, lp := range listed {
		inPkg := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		if u, err := checkUnit(fset, imp, lp.Dir, lp.ImportPath, inPkg); err != nil {
			return nil, err
		} else if u != nil {
			units = append(units, u)
		}
		if u, err := checkUnit(fset, imp, lp.Dir, lp.ImportPath+"_test", lp.XTestGoFiles); err != nil {
			return nil, err
		} else if u != nil {
			units = append(units, u)
		}
	}
	return units, nil
}

// checkUnit parses and type-checks one set of files as a single package.
func checkUnit(fset *token.FileSet, imp types.Importer, dir, path string, files []string) (*Package, error) {
	if len(files) == 0 {
		return nil, nil
	}
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{PkgPath: path, Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info}, nil
}

// NewTypesInfo allocates a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

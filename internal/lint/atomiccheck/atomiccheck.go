// Package atomiccheck enforces single-discipline access to atomically
// shared memory: once any code takes a variable's (or field's, or slice's
// element) address into a sync/atomic function call, every other access to
// that object must also go through sync/atomic. A plain read or write
// racing an atomic one is real undefined behavior that `go test -race`
// only catches when the schedule cooperates; the analyzer catches it on
// every CI run.
//
// The object granularity is the named variable or struct field: for a
// slice, atomic access to any element marks the whole slice variable,
// since the analyzer cannot prove two element expressions disjoint.
// Accesses that only read the slice header remain allowed on a marked
// object — len/cap arguments and the range expression of a for-range — so
// the index-only loop `for i := range s` over a marked slice stays clean.
//
// The atomic wrapper types (atomic.Int64, atomic.Pointer[T], ...) need no
// analyzer: their only access path is their method set.
package atomiccheck

import (
	"go/ast"
	"go/types"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the atomiccheck entry point.
var Analyzer = &lint.Analyzer{
	Name: "atomiccheck",
	Doc:  "memory accessed via sync/atomic must never be read or written plainly elsewhere",
	Run:  run,
}

func run(pass *lint.Pass) error {
	atomicObjs := map[types.Object]string{} // object -> atomic fn name first seen
	sanctioned := map[*ast.Ident]bool{}     // idents appearing inside atomic call args
	allowed := map[*ast.Ident]bool{}        // len/cap args, range headers

	// Pass 1: find sync/atomic calls, mark their address-taken operands'
	// objects and sanction the identifiers involved; also collect the
	// benign header-read contexts.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := atomicCallee(pass, n); fn != "" {
					for _, arg := range n.Args {
						markAtomicArg(pass, arg, fn, atomicObjs, sanctioned)
					}
					return true
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin && (id.Name == "len" || id.Name == "cap") {
						for _, arg := range n.Args {
							if aid, ok := ast.Unparen(arg).(*ast.Ident); ok {
								allowed[aid] = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					allowed[id] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: every other use of a marked object is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] || allowed[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if fn, marked := atomicObjs[obj]; marked {
				pass.Reportf(id.Pos(), "%s is accessed with sync/atomic (%s) elsewhere; this plain access races with it — use the atomic API here too", id.Name, fn)
			}
			return true
		})
	}
	return nil
}

// atomicCallee returns the function name when the call invokes a
// sync/atomic package-level function (AddInt32, LoadPointer, ...), else "".
func atomicCallee(pass *lint.Pass, call *ast.CallExpr) string {
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Wrapper-type methods enforce atomicity themselves.
		return ""
	}
	return fn.Name()
}

// markAtomicArg records the object behind an &operand argument of an atomic
// call and sanctions every identifier inside the operand expression.
func markAtomicArg(pass *lint.Pass, arg ast.Expr, fn string, atomicObjs map[types.Object]string, sanctioned map[*ast.Ident]bool) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return
	}
	// Sanction every ident in the operand (the base variable and any
	// selector/index path components).
	ast.Inspect(un.X, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			sanctioned[id] = true
		}
		return true
	})
	if obj := baseObject(pass, un.X); obj != nil {
		if _, seen := atomicObjs[obj]; !seen {
			atomicObjs[obj] = fn
		}
	}
}

// baseObject resolves &x, &s.f, &a[i], &s.f[i] to the object whose storage
// the atomic call addresses: the field for selectors, the slice/array
// variable for index expressions, the variable itself otherwise.
func baseObject(pass *lint.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.IndexExpr:
		return baseObject(pass, e.X)
	}
	return nil
}

// Package app is the atomiccheck corpus: fields and slice elements touched
// through sync/atomic, with plain accesses the analyzer must flag and
// header-only accesses it must allow.
package app

import "sync/atomic"

type counters struct {
	hits  int32
	total int64
	other int64
}

// Bad mixes an atomic add with a plain read of the same field.
func Bad(c *counters) int32 {
	atomic.AddInt32(&c.hits, 1)
	return c.hits // want `plain access races`
}

// BadWrite mixes an atomic add with a plain store.
func BadWrite(c *counters) {
	atomic.AddInt64(&c.total, 1)
	c.total = 0 // want `plain access races`
}

// Good keeps every access to the marked fields atomic.
func Good(c *counters) int32 {
	atomic.AddInt32(&c.hits, 1)
	return atomic.LoadInt32(&c.hits)
}

// Unmarked fields stay free: other is never touched atomically.
func Plain(c *counters) int64 {
	c.other++
	return c.other
}

// GoodSlice marks a slice through element addresses but only ever touches
// elements atomically; len and range over the variable read the header
// only and are allowed.
func GoodSlice(n int) int32 {
	hits := make([]int32, n)
	for i := range hits {
		atomic.AddInt32(&hits[i], 1)
	}
	if len(hits) == 0 {
		return 0
	}
	return atomic.LoadInt32(&hits[0])
}

// BadSlice reads an element of an atomically written slice plainly.
func BadSlice(n int) int32 {
	peaks := make([]int32, n)
	atomic.AddInt32(&peaks[0], 1)
	return peaks[0] // want `plain access races`
}

// IgnoredRead documents a deliberate suppression (e.g. a read after a
// synchronizing join).
func IgnoredRead(c *counters) int64 {
	atomic.AddInt64(&c.total, 1)
	return c.total //grblint:ignore atomiccheck -- corpus: deliberate suppressed case
}

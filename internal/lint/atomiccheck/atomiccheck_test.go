package atomiccheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/atomiccheck"
	"github.com/grblas/grb/internal/lint/linttest"
)

func TestAtomicCheck(t *testing.T) {
	linttest.Run(t, "testdata", atomiccheck.Analyzer, "app")
}

package obsvcheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/linttest"
	"github.com/grblas/grb/internal/lint/obsvcheck"
)

func TestObsvCheck(t *testing.T) {
	linttest.Run(t, "testdata", obsvcheck.Analyzer, "app")
}

// Package obsv is the obsvcheck corpus stub of the observability tokens
// and the group-atomic counter bank.
package obsv

// Exec is one kernel event token.
type Exec struct{ active bool }

// Begin opens a kernel event.
func Begin(ev string, seq uint64) Exec { return Exec{active: true} }

// End closes the event.
func (e Exec) End(outNNZ int, err error) {}

// Span is one sequence-drain span token.
type Span struct{ active bool }

// SeqBegin opens a sequence span.
func SeqBegin(kind string) Span { return Span{active: true} }

// End closes the span.
func (s Span) End(steps int) {}

// Group is the group-atomic counter bank.
type Group struct{ c [8]int64 }

// Add adds d to slot i.
func (g *Group) Add(i int, d int64) { g.c[i] += d }

// Get reads slot i.
func (g *Group) Get(i int) int64 { return g.c[i] }

// KernelCounters is the shared bank.
var KernelCounters Group

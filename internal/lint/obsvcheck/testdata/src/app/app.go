// Package app is the obsvcheck corpus: token acquisitions in every pairing
// shape the analyzer must accept or reject, plus counter-bank writes inside
// and outside the sanctioned helper form.
package app

import (
	"errors"

	"obsv"
)

// GoodDefer pairs with a deferred End: every path is covered.
func GoodDefer() error {
	x := obsv.Begin("op", 1)
	defer x.End(0, nil)
	return nil
}

// GoodDeferClosure ends inside a deferred closure.
func GoodDeferClosure() (err error) {
	x := obsv.Begin("op", 1)
	defer func() { x.End(0, err) }()
	return nil
}

// GoodBranchy is the grb-layer if/else pairing: both arms End before they
// return.
func GoodBranchy(fail bool) error {
	x := obsv.Begin("op", 1)
	if fail {
		err := errors.New("boom")
		x.End(0, err)
		return err
	}
	x.End(1, nil)
	return nil
}

// GoodSpan is a straight-line span with no return statement.
func GoodSpan(n int) {
	sp := obsv.SeqBegin("drain")
	steps := 0
	for i := 0; i < n; i++ {
		steps++
	}
	sp.End(steps)
}

// GoodClosure acquires and ends within the same function literal.
func GoodClosure() func() {
	return func() {
		x := obsv.Begin("op", 2)
		x.End(0, nil)
	}
}

// BadNoEnd leaks the token: no End anywhere.
func BadNoEnd() {
	x := obsv.Begin("op", 1) // want `never ended`
	_ = x
}

// BadDiscard throws the token away at the call site.
func BadDiscard() {
	obsv.Begin("op", 1) // want `discarded`
}

// BadBlank binds the token to the blank identifier.
func BadBlank() {
	_ = obsv.Begin("op", 1) // want `discarded`
}

// BadEarlyReturn ends on the happy path but leaks on the error path.
func BadEarlyReturn(fail bool) error {
	x := obsv.Begin("op", 1) // want `may return without End at line \d+`
	if fail {
		return errors.New("boom")
	}
	x.End(1, nil)
	return nil
}

// BadSpanLeak leaks the span on an early return.
func BadSpanLeak(skip bool, n int) int {
	sp := obsv.SeqBegin("drain") // want `may return without End`
	if skip {
		return 0
	}
	sp.End(n)
	return n
}

// kc is the sanctioned counter-helper shape: an integer index type wearing
// the Add method.
type kc int

// Add routes the write through the group-atomic bank.
func (k kc) Add(d int64) { obsv.KernelCounters.Add(int(k), d) }

var hits = kc(3)

// GoodCounter writes through the helper.
func GoodCounter() { hits.Add(1) }

// BadCounter writes the bank slot directly from kernel code.
func BadCounter() {
	obsv.KernelCounters.Add(3, 1) // want `counter-bank write`
}

// IgnoredLeak documents a deliberate suppression.
func IgnoredLeak() {
	x := obsv.Begin("op", 9) //grblint:ignore obsvcheck -- corpus: deliberate suppressed case
	_ = x
}

// Package obsvcheck enforces the observability pairing invariants
// (DESIGN.md "Observability"): a kernel event or sequence span token
// acquired from obsv.Begin*/SeqBegin must reach its matching End on every
// return path — a leaked token corrupts trace parenting and under-counts
// the op — and counter-bank slots must only be written through the
// group-atomic counter helpers, never by ad-hoc Group.Add calls scattered
// through kernels (a torn mix with Snapshot/Reset).
//
// Token rule, per Begin call:
//
//   - the result must be bound to a variable (discarding the token, or
//     binding it to _, is a leak by construction)
//   - some End call on that token must exist in the enclosing function;
//     a deferred End (directly or inside a deferred closure) satisfies
//     every path at once
//   - without a defer, every return statement after the Begin (in the
//     same function literal) must be lexically preceded by an End on the
//     token — the shape of the branchy Begin/End pairs in the grb layer.
//     This is a lexical approximation of all-paths reachability: it
//     accepts any return that follows some End in source order, so a
//     genuinely leaky path can hide behind an End in a sibling branch,
//     but it catches the common early-error-return leak with no false
//     positives on the repo's straight-line and if/else pairings.
//
// Counter rule: outside package obsv, (*obsv.Group).Add may only be called
// from a method whose receiver is an integer index type — the kcounter/
// bcounter helpers that give a slot the old atomic.Int64 method set.
package obsvcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the obsvcheck entry point.
var Analyzer = &lint.Analyzer{
	Name: "obsvcheck",
	Doc:  "obsv Begin*/SeqBegin tokens must End on all return paths; counter banks written only via group-atomic helpers",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if strings.HasPrefix(pass.Pkg.Name(), "obsv") {
		// The obsv package (and its test unit) implements the tokens; its
		// internals and lifecycle tests are out of scope.
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTokens(pass, fd)
			checkCounterWrites(pass, fd)
		}
	}
	return nil
}

// beginCall reports whether the call acquires an obsv token (Begin,
// SeqBegin, or any future Begin-suffixed acquisition).
func beginCall(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "obsv" {
		return false
	}
	name := fn.Name()
	return strings.HasPrefix(name, "Begin") || strings.HasSuffix(name, "Begin")
}

// tokenUse is one Begin acquisition: the token object it binds and the
// function literal region (nil = the FuncDecl body) the call sits in.
type tokenUse struct {
	call   *ast.CallExpr
	obj    types.Object
	region ast.Node // innermost *ast.FuncLit containing the call, or the *ast.FuncDecl
}

// endCall is one token.End(...) call with its defer context.
type endCall struct {
	pos      token.Pos
	obj      types.Object
	deferred bool
}

// checkTokens finds every Begin acquisition in the function and verifies
// its End pairing.
func checkTokens(pass *lint.Pass, fd *ast.FuncDecl) {
	var begins []tokenUse
	var ends []endCall

	// walk tracks the innermost function-literal region and the deferred
	// context while visiting every node of the declaration body.
	var walk func(n ast.Node, region ast.Node, deferred bool)
	walk = func(n ast.Node, region ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true
				}
				walk(m.Body, m, deferred)
				return false
			case *ast.DeferStmt:
				// The deferred call's arguments evaluate immediately; only
				// the call itself (and a deferred closure's body) runs late.
				if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, lit, true)
				} else {
					recordCall(pass, m.Call, region, true, &begins, &ends)
				}
				for _, arg := range m.Call.Args {
					walk(arg, region, deferred)
				}
				return false
			case *ast.CallExpr:
				recordCall(pass, m, region, deferred, &begins, &ends)
				return true
			}
			return true
		})
	}
	walk(fd.Body, fd, false)

	for _, b := range begins {
		verifyToken(pass, fd, b, ends)
	}
}

// recordCall classifies one call as a Begin acquisition or an End on a
// token object.
func recordCall(pass *lint.Pass, call *ast.CallExpr, region ast.Node, deferred bool, begins *[]tokenUse, ends *[]endCall) {
	if beginCall(pass, call) {
		*begins = append(*begins, tokenUse{call: call, obj: nil, region: region})
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !lint.IsNamed(obj.Type(), "obsv", "Exec", "Span") {
		return
	}
	*ends = append(*ends, endCall{pos: call.Pos(), obj: obj, deferred: deferred})
}

// verifyToken resolves the Begin's binding and checks the End pairing.
func verifyToken(pass *lint.Pass, fd *ast.FuncDecl, b tokenUse, ends []endCall) {
	obj, escapes := bindingOf(pass, fd, b.call)
	if escapes {
		return
	}
	if obj == nil {
		pass.Reportf(b.call.Pos(), "result of obsv token acquisition is discarded; bind it and End it on every path")
		return
	}
	var anyEnd, deferredEnd bool
	var endPositions []token.Pos
	for _, e := range ends {
		if e.obj != obj {
			continue
		}
		anyEnd = true
		if e.deferred {
			deferredEnd = true
		}
		endPositions = append(endPositions, e.pos)
	}
	if !anyEnd {
		pass.Reportf(b.call.Pos(), "obsv token %s is never ended; every path must reach %s.End", obj.Name(), obj.Name())
		return
	}
	if deferredEnd {
		return
	}
	// No defer: every return after the Begin in the same function literal
	// must be lexically preceded by an End.
	for _, ret := range returnsIn(b.region) {
		if ret.Pos() < b.call.Pos() {
			continue
		}
		covered := false
		for _, ep := range endPositions {
			if ep < ret.Pos() {
				covered = true
				break
			}
		}
		if !covered {
			retLine := pass.Fset.Position(ret.Pos()).Line
			pass.Reportf(b.call.Pos(), "obsv token %s may return without End at line %d (prefer defer %s.End)", obj.Name(), retLine, obj.Name())
			return
		}
	}
}

// bindingOf returns the object the Begin call's result is bound to, or nil
// when the result is discarded (expression statement, blank, or any
// non-identifier destination). escapes is true when the token is returned
// directly to the caller, whose own Begin-shaped call is then checked
// instead.
func bindingOf(pass *lint.Pass, fd *ast.FuncDecl, call *ast.CallExpr) (obj types.Object, escapes bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != len(n.Lhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if ast.Unparen(rhs) != call {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					return false
				}
				obj = identObject(pass, id)
				return false
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if ast.Unparen(rhs) != call || i >= len(n.Names) {
					continue
				}
				if n.Names[i].Name == "_" {
					return false
				}
				obj = identObject(pass, n.Names[i])
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if ast.Unparen(res) == call {
					escapes = true
					return false
				}
			}
		}
		return true
	})
	return obj, escapes
}

// identObject resolves an assignment destination to its object.
func identObject(pass *lint.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

// returnsIn collects the return statements of a function region, not
// descending into nested literals.
func returnsIn(region ast.Node) []*ast.ReturnStmt {
	var body *ast.BlockStmt
	switch r := region.(type) {
	case *ast.FuncDecl:
		body = r.Body
	case *ast.FuncLit:
		body = r.Body
	default:
		return nil
	}
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// checkCounterWrites flags (*obsv.Group).Add calls outside the integer-
// receiver counter helpers.
func checkCounterWrites(pass *lint.Pass, fd *ast.FuncDecl) {
	if integerReceiverMethod(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Add" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !lint.IsNamed(sig.Recv().Type(), "obsv", "Group") {
			return true
		}
		pass.Reportf(call.Pos(), "counter-bank write outside a group-atomic counter helper; wrap the slot in an integer index type with an Add method")
		return true
	})
}

// integerReceiverMethod reports whether fd is a method on an integer index
// type — the sanctioned counter-helper shape.
func integerReceiverMethod(pass *lint.Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

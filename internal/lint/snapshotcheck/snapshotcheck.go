// Package snapshotcheck implements the grblint analyzer that guards the
// substrate's immutability contract: CSR matrices and sparse vectors are
// snapshots — immutable once built (§III of the GraphBLAS 2.0 paper). The
// transpose cache and the nonblocking pipeline both rest on this: a kernel
// that mutates a shared snapshot breaks coherence silently.
//
// The rule: inside the sparse package, a function must not write to the
// storage slices (CSR.Ptr/Ind/Val, Vec.Ind/Val) of a *CSR/*Vec it received
// as a parameter or receiver — writes include field assignment, element
// assignment, ++/--, append-reassignment, and copy/clear into the slice.
// Freshly allocated locals (composite literals, NewCSR/NewVec, Clone) are
// exempt, as are functions whose name starts with "install" or "new" — the
// blessed constructor/install helpers that build an object before it is
// published.
//
// The check is intraprocedural and tracks direct parameter identifiers
// only; aliasing a snapshot into a local and writing through the alias is
// not caught (document such helpers as install* instead).
package snapshotcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/grblas/grb/internal/lint"
)

// Analyzer is the snapshotcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "snapshotcheck",
	Doc: "report writes to the storage slices of snapshot (*CSR/*Vec) parameters inside the sparse " +
		"package; snapshots are immutable once built and kernels must allocate fresh outputs",
	Run: run,
}

// storageFields lists the guarded fields per snapshot type.
var storageFields = map[string]map[string]bool{
	"CSR": {"Ptr": true, "Ind": true, "Val": true},
	"Vec": {"Ind": true, "Val": true},
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() != "sparse" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || exemptFunc(fd.Name.Name) {
				continue
			}
			snaps := snapshotOperands(pass.TypesInfo, fd)
			if len(snaps) == 0 {
				continue
			}
			checkBody(pass, fd, snaps)
		}
	}
	return nil
}

// exemptFunc reports whether a function name marks a blessed mutator: the
// constructors and install helpers that build storage before publication.
func exemptFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "install") || strings.HasPrefix(lower, "new")
}

// snapshotOperands collects the receiver and parameters of snapshot type.
func snapshotOperands(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	snaps := map[types.Object]bool{}
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isSnapshotType(obj.Type()) {
					snaps[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return snaps
}

func isSnapshotType(t types.Type) bool {
	return lint.IsNamed(t, "sparse", "CSR", "Vec")
}

func checkBody(pass *lint.Pass, fd *ast.FuncDecl, snaps map[types.Object]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncDecl:
			return true
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				reportStorageWrite(pass, lhs, snaps, "assigned to")
			}
		case *ast.IncDecStmt:
			reportStorageWrite(pass, s.X, snaps, "mutated by ++/-- through")
		case *ast.CallExpr:
			// copy(snap.Ind, ...) and clear(snap.Ind) write through the
			// first argument.
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && (id.Name == "copy" || id.Name == "clear") {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Pkg() == nil && len(s.Args) > 0 {
					reportStorageWrite(pass, s.Args[0], snaps, "written by "+id.Name+" through")
				}
			}
		}
		return true
	})
}

// reportStorageWrite flags expr when it is (or indexes into) a guarded
// storage field of a snapshot operand.
func reportStorageWrite(pass *lint.Pass, expr ast.Expr, snaps map[types.Object]bool, how string) {
	sel := baseSelector(expr)
	if sel == nil {
		return
	}
	base, ok := ast.Unparen(derefExpr(sel.X)).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil || !snaps[obj] {
		return
	}
	typeName := lint.NamedFrom(obj.Type()).Origin().Obj().Name()
	if !storageFields[typeName][sel.Sel.Name] {
		return
	}
	pass.Reportf(expr.Pos(),
		"snapshot %s.%s %s a %s parameter's storage; snapshots are immutable — build a fresh %s "+
			"(or mark the function as an install* helper)",
		base.Name, sel.Sel.Name, how, typeName, typeName)
}

// baseSelector peels index and slice expressions off expr down to the
// selector being written through, if any: m.Ptr, m.Ptr[i], m.Ind[lo:hi].
func baseSelector(expr ast.Expr) *ast.SelectorExpr {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.SelectorExpr:
			return e
		default:
			return nil
		}
	}
}

// derefExpr unwraps a unary * so (*m).Ptr matches like m.Ptr.
func derefExpr(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.StarExpr); ok {
		return u.X
	}
	return e
}

package snapshotcheck_test

import (
	"testing"

	"github.com/grblas/grb/internal/lint/linttest"
	"github.com/grblas/grb/internal/lint/snapshotcheck"
)

func TestSnapshotcheck(t *testing.T) {
	linttest.Run(t, "testdata", snapshotcheck.Analyzer, "sparse")
}

// Package sparse is the snapshotcheck corpus: a miniature copy of the
// substrate's snapshot types plus every write shape the analyzer guards.
// The analyzer only runs on packages named "sparse", so the corpus carries
// the types and the offending code in one package, like the real substrate.
package sparse

// CSR is a stub of the immutable CSR snapshot.
type CSR[T any] struct {
	Rows, Cols int
	Ptr        []int
	Ind        []int
	Val        []T
}

// Vec is a stub of the immutable sparse-vector snapshot.
type Vec[T any] struct {
	N   int
	Ind []int
	Val []T
}

// NewCSR is a blessed constructor (new* prefix): writes are fine here.
func NewCSR(rows, cols, nnz int) *CSR[float64] {
	c := &CSR[float64]{Rows: rows, Cols: cols}
	c.Ptr = make([]int, rows+1)
	c.Ind = make([]int, nnz)
	c.Val = make([]float64, nnz)
	return c
}

// installRowPtr is a blessed install helper (install* prefix): exempt.
func installRowPtr(c *CSR[float64], ptr []int) {
	c.Ptr = ptr
}

func scaleInPlace(c *CSR[float64], f float64) {
	for i := range c.Val {
		c.Val[i] *= f // want `snapshot c\.Val assigned to a CSR parameter's storage`
	}
}

func (c *CSR[T]) compact() {
	c.Ptr = nil // want `snapshot c\.Ptr assigned to a CSR parameter's storage`
}

func bumpFirst(c *CSR[int]) {
	c.Ptr[0]++ // want `snapshot c\.Ptr mutated by \+\+/-- through a CSR parameter's storage`
}

func overwrite(v *Vec[int], src []int) {
	copy(v.Ind, src) // want `snapshot v\.Ind written by copy through a Vec parameter's storage`
	clear(v.Val)     // want `snapshot v\.Val written by clear through a Vec parameter's storage`
}

// freshOutput allocates its own result: writes to locals are fine.
func freshOutput(c *CSR[int]) *CSR[int] {
	out := &CSR[int]{Rows: c.Rows, Cols: c.Cols}
	out.Ptr = make([]int, c.Rows+1)
	out.Ind = append(out.Ind, c.Ind...)
	out.Val = append(out.Val, c.Val...)
	return out
}

// headerWrite touches a non-storage field: dims are not guarded.
func headerWrite(c *CSR[int]) {
	c.Rows = c.Rows
}

// normalize is deliberately mutating a test-local vector; the suppression
// convention keeps it quiet.
func normalize(v *Vec[int]) {
	for k := 1; k < len(v.Ind); k++ {
		v.Ind[k], v.Ind[k-1] = v.Ind[k-1], v.Ind[k] //grblint:ignore snapshotcheck -- corpus: deliberate in-place normalization
	}
}

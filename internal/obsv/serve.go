package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The serve-stats registry is the serving layer's operational dashboard:
// named gauges and counters for the overload-protection machinery — memory
// governor live bytes and sheds, per-tenant AIMD limiter windows, circuit
// breaker states and transitions, queue drops, drain state. It complements
// the label registry the same way gauges complement request counters: labels
// answer "who asked and how did it go", serve stats answer "what is the
// control plane doing right now". Like the label registry it is always on —
// one atomic per observation, far below emit-point cost concerns.
//
// Names are dotted paths ("govern.live_bytes", "limiter.window.gold",
// "breaker.state.gold"); the full map lands in the metrics Handler document
// under "serve".

var serveRegistry sync.Map // name -> *atomic.Int64

// serveCell returns the counter cell for name, creating it on first use.
func serveCell(name string) *atomic.Int64 {
	if v, ok := serveRegistry.Load(name); ok {
		return v.(*atomic.Int64)
	}
	v, _ := serveRegistry.LoadOrStore(name, &atomic.Int64{})
	return v.(*atomic.Int64)
}

// ServeSet records a gauge observation: the named cell is set to v.
func ServeSet(name string, v int64) { serveCell(name).Store(v) }

// ServeAdd folds delta into the named counter and returns the new total.
func ServeAdd(name string, delta int64) int64 { return serveCell(name).Add(delta) }

// ServeGet returns the named cell's current value (0 if never recorded).
func ServeGet(name string) int64 {
	if v, ok := serveRegistry.Load(name); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// ServeSnapshot returns every serve-stats cell by name.
func ServeSnapshot() map[string]int64 {
	out := make(map[string]int64)
	serveRegistry.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// ServeNames returns the recorded cell names in sorted order.
func ServeNames() []string {
	var names []string
	serveRegistry.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// ResetServe drops every serve-stats cell.
func ResetServe() {
	serveRegistry.Range(func(k, _ any) bool {
		serveRegistry.Delete(k)
		return true
	})
}

package obsv

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"sync"
)

// The trace sink buffers events in memory and serializes them in Chrome
// trace-event format ("Trace Event Format", the JSON chrome://tracing and
// Perfetto load). Sequence spans and their kernel children share a tid (the
// sequence id), so viewers nest children under the span by time containment;
// immediate events land on tid 0.
//
// Two session flavours exist:
//
//   - writer sessions (TraceToWriter / grb.TraceTo): buffered until EndTrace
//     writes the complete JSON once. Used by tests and programs that want the
//     trace handed to them.
//   - file sessions (TraceToFile, the GRB_TRACE=path env handled by
//     grb.Init): persistent — FlushTrace rewrites the file with everything
//     buffered so far and keeps collecting, so a test binary that cycles
//     Init/Finalize still ends with one valid, cumulative trace file.
//
// maxTraceEvents bounds the buffer; events past the cap are counted in
// "dropped_events" rather than silently lost.
const maxTraceEvents = 1 << 20

type traceSession struct {
	events  []*Event
	dropped int64
	w       io.Writer // writer session (one-shot)
	path    string    // file session (persistent, rewritten by FlushTrace)
}

var (
	traceMu sync.Mutex
	trace   *traceSession
)

// ErrTracing is returned when a trace session is already active.
var ErrTracing = errors.New("obsv: trace session already active")

// ErrNotTracing is returned by flush/end with no active session.
var ErrNotTracing = errors.New("obsv: no active trace session")

// Tracing reports whether a trace session is collecting events.
func Tracing() bool { return state.Load()&stTrace != 0 }

// TraceToWriter starts a writer session: events buffer until EndTrace
// serializes them to w. Only one session may be active.
func TraceToWriter(w io.Writer) error {
	traceMu.Lock()
	defer traceMu.Unlock()
	if trace != nil {
		return ErrTracing
	}
	trace = &traceSession{w: w}
	setStateBit(stTrace, true)
	return nil
}

// TraceToFile starts a persistent file session: FlushTrace (and EndTrace)
// rewrite path with the full cumulative buffer. The path is validated by
// creating the file immediately, so a bad GRB_TRACE fails at Init rather
// than at the end of the run.
func TraceToFile(path string) error {
	traceMu.Lock()
	defer traceMu.Unlock()
	if trace != nil {
		return ErrTracing
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	trace = &traceSession{path: path}
	setStateBit(stTrace, true)
	return nil
}

// recordTrace appends one completed event to the active session's buffer.
func recordTrace(ev *Event) {
	traceMu.Lock()
	defer traceMu.Unlock()
	if trace == nil {
		return
	}
	if len(trace.events) >= maxTraceEvents {
		trace.dropped++
		return
	}
	trace.events = append(trace.events, ev)
}

// FlushTrace writes the cumulative buffer of a file session to its path and
// keeps the session collecting. It is a no-op for writer sessions (their one
// write happens at EndTrace) and returns ErrNotTracing with no session.
func FlushTrace() error {
	traceMu.Lock()
	defer traceMu.Unlock()
	if trace == nil {
		return ErrNotTracing
	}
	if trace.path == "" {
		return nil
	}
	blob, err := trace.marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(trace.path, blob, 0o644)
}

// EndTrace serializes the buffer to the session's writer or file and ends
// the session.
func EndTrace() error {
	traceMu.Lock()
	defer traceMu.Unlock()
	if trace == nil {
		return ErrNotTracing
	}
	t := trace
	trace = nil
	setStateBit(stTrace, false)
	blob, err := t.marshal()
	if err != nil {
		return err
	}
	if t.w != nil {
		_, err = t.w.Write(blob)
		return err
	}
	return os.WriteFile(t.path, blob, 0o644)
}

// TraceBuffered returns the number of events the active session holds (0
// without a session) — surfaced by the HTTP endpoint.
func TraceBuffered() int {
	traceMu.Lock()
	defer traceMu.Unlock()
	if trace == nil {
		return 0
	}
	return len(trace.events)
}

// traceEvent is one entry of the Chrome trace-event JSON. ts and dur are in
// microseconds (float, so sub-µs kernels keep their ordering).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level Chrome trace JSON object.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// marshal serializes the buffered events. Callers hold traceMu.
func (t *traceSession) marshal() ([]byte, error) {
	tes := make([]traceEvent, 0, len(t.events)+1)
	tes = append(tes, traceEvent{
		Name: "process_name", Cat: "__metadata", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "grb"},
	})
	for _, ev := range t.events {
		te := traceEvent{
			Name: ev.Op,
			Cat:  ev.Kind,
			Ph:   "X",
			Ts:   float64(ev.Start) / 1e3,
			Dur:  float64(ev.Dur) / 1e3,
			Pid:  1,
			Tid:  uint64(ev.Seq),
		}
		args := map[string]any{}
		if ev.Route != "" {
			args["route"] = ev.Route
		}
		if ev.Threads != 0 {
			args["threads"] = ev.Threads
		}
		if ev.ARows != 0 || ev.ACols != 0 {
			args["a"] = []int{ev.ARows, ev.ACols, ev.ANNZ}
		}
		if ev.BRows != 0 || ev.BCols != 0 {
			args["b"] = []int{ev.BRows, ev.BCols, ev.BNNZ}
		}
		args["out_nnz"] = ev.OutNNZ
		if ev.Flops != 0 {
			args["flops"] = ev.Flops
		}
		if ev.ScratchBytes != 0 {
			args["scratch_bytes"] = ev.ScratchBytes
		}
		if ev.DenseRanges != 0 {
			args["dense_ranges"] = ev.DenseRanges
		}
		if ev.HashRanges != 0 {
			args["hash_ranges"] = ev.HashRanges
		}
		if ev.PushCalls != 0 {
			args["push_calls"] = ev.PushCalls
		}
		if ev.PullCalls != 0 {
			args["pull_calls"] = ev.PullCalls
		}
		if ev.TransposeMats != 0 {
			args["transpose_mats"] = ev.TransposeMats
		}
		if ev.Steps != 0 {
			args["steps"] = ev.Steps
		}
		if ev.Err != "" {
			args["err"] = ev.Err
		}
		te.Args = args
		tes = append(tes, te)
	}
	out := traceFile{
		TraceEvents:     tes,
		DisplayTimeUnit: "ms",
	}
	if t.dropped > 0 {
		out.OtherData = map[string]any{"dropped_events": t.dropped}
	}
	return json.Marshal(out)
}

package obsv

import (
	"encoding/json"
	"net/http"
)

// Handler returns an expvar-style HTTP handler for long-running serving
// processes: GET yields one JSON document with the sink states, the per-op
// metrics registry, and the kernel counter group. Mount it wherever the host
// process serves debug endpoints, e.g.
//
//	http.Handle("/debug/grb", grb.MetricsHandler())
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		kc := KernelCounters.Snapshot()
		counters := make(map[string]int64, len(kc))
		for i, name := range KernelCounters.Names() {
			counters[name] = kc[i]
		}
		bc := BlockCounters.Snapshot()
		blocked := make(map[string]int64, len(bc))
		for i, name := range BlockCounters.Names() {
			blocked[name] = bc[i]
		}
		doc := struct {
			MetricsEnabled bool                    `json:"metrics_enabled"`
			Tracing        bool                    `json:"tracing"`
			UptimeNs       int64                   `json:"uptime_ns"`
			Ops            map[string]OpMetrics    `json:"ops"`
			Tenants        map[string]LabelMetrics `json:"tenants,omitempty"`
			Serve          map[string]int64        `json:"serve,omitempty"`
			KernelCounters map[string]int64        `json:"kernel_counters"`
			BlockCounters  map[string]int64        `json:"block_counters"`
			TraceBuffered  int                     `json:"trace_events_buffered"`
		}{
			MetricsEnabled: MetricsEnabled(),
			Tracing:        Tracing(),
			UptimeNs:       int64(Uptime()),
			Ops:            MetricsSnapshot(),
			Tenants:        LabelsSnapshot(),
			Serve:          ServeSnapshot(),
			KernelCounters: counters,
			BlockCounters:  blocked,
			TraceBuffered:  TraceBuffered(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			// Headers are already out; nothing useful to send the client.
			return
		}
	})
}

package obsv

import (
	"sync"
	"testing"
)

// TestServeStatsBasics covers the gauge/counter surface: set overwrites,
// add accumulates and returns the total, get reads without creating, and
// snapshot/names/reset see every cell.
func TestServeStatsBasics(t *testing.T) {
	ResetServe()
	t.Cleanup(ResetServe)

	ServeSet("govern.live_bytes", 1234)
	ServeSet("govern.live_bytes", 99)
	if got := ServeGet("govern.live_bytes"); got != 99 {
		t.Fatalf("gauge = %d, want 99 (set overwrites)", got)
	}
	if got := ServeAdd("govern.sheds", 2); got != 2 {
		t.Fatalf("add total = %d, want 2", got)
	}
	if got := ServeAdd("govern.sheds", 3); got != 5 {
		t.Fatalf("add total = %d, want 5", got)
	}
	if got := ServeGet("never.recorded"); got != 0 {
		t.Fatalf("unrecorded cell = %d, want 0", got)
	}
	snap := ServeSnapshot()
	if snap["govern.live_bytes"] != 99 || snap["govern.sheds"] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := ServeNames()
	if len(names) != 2 || names[0] != "govern.live_bytes" || names[1] != "govern.sheds" {
		t.Fatalf("names = %v", names)
	}
	ResetServe()
	if len(ServeSnapshot()) != 0 {
		t.Fatal("reset left cells behind")
	}
}

// TestServeStatsConcurrent hammers one counter and one gauge from many
// goroutines under -race; the counter total must be exact.
func TestServeStatsConcurrent(t *testing.T) {
	ResetServe()
	t.Cleanup(ResetServe)
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ServeAdd("limiter.sheds.t", 1)
				ServeSet("limiter.window.t", int64(w*iters+i))
			}
		}(w)
	}
	wg.Wait()
	if got := ServeGet("limiter.sheds.t"); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
}

// Package obsv is the library's observability substrate: a low-overhead
// event/metrics layer that records one structured Event per kernel execution
// and one span per deferred sequence drain, and fans both out to three sinks
// — an in-process metrics registry (registry.go), a Chrome-trace-format JSON
// writer (trace.go), and an expvar-style HTTP endpoint (http.go).
//
// The §III sequence model makes execution deferred and opaque: the user calls
// MxM but the work happens later, inside Wait, on whichever kernel the router
// picked. Events therefore carry a sequence span id (Seq), so nonblocking-
// mode cost is attributable to the user-level call that enqueued it, and the
// kernel route actually taken (dense/hash SPA, push/pull, transpose-cache
// miss), resolved from the kernel counter group's per-call deltas.
//
// Overhead contract: with every sink disabled (the default), an emit point
// costs one atomic load and allocates nothing — Begin returns a zero Exec by
// value and End returns immediately. The grb layer additionally constructs
// its *Event only when Active() reports true, so the disabled fast path never
// touches the heap. A dedicated benchmark (BenchmarkDisabledEmit) and an
// AllocsPerRun test pin this down.
package obsv

import (
	"sync/atomic"
	"time"
)

// state is the master enable bitmask. Emit points check it with a single
// atomic load; all sinks are off by default.
const (
	stMetrics uint32 = 1 << iota // per-op metrics registry collecting
	stTrace                      // trace session buffering events
)

var state atomic.Uint32

// Active reports whether any sink wants events. Op layers call this before
// constructing an Event so the disabled path stays allocation-free.
func Active() bool { return state.Load() != 0 }

// setStateBit sets or clears one state bit, returning whether it was set.
func setStateBit(bit uint32, on bool) bool {
	for {
		old := state.Load()
		nw := old &^ bit
		if on {
			nw = old | bit
		}
		if state.CompareAndSwap(old, nw) {
			return old&bit != 0
		}
	}
}

// epoch anchors event timestamps: Start fields are nanoseconds since process
// init on the monotonic clock, so spans and their children order correctly
// even across wall-clock adjustments.
var epoch = time.Now()

// now returns nanoseconds since the epoch.
func now() int64 { return int64(time.Since(epoch)) }

// Uptime returns the time since the observability epoch (process init).
func Uptime() time.Duration { return time.Since(epoch) }

// SeqID identifies one deferred-sequence drain (enqueue → Wait). Zero means
// "no sequence": the event ran immediately (blocking mode or a scalar read).
type SeqID uint64

var seqCounter atomic.Uint64

// Event is one structured record per kernel execution (Kind "kernel"), per
// sequence drain (Kind "sequence") or per deferred tuple merge (Kind
// "merge"). The A* fields describe the first operand, B* the second (for
// vectors Cols is 1); zero-valued operand fields mean "no such operand".
type Event struct {
	Op      string `json:"op"`                // user-level operation ("MxM", "VxM", ...)
	Kind    string `json:"kind"`              // "kernel" | "sequence" | "merge"
	Route   string `json:"route,omitempty"`   // kernel route: requested at call time, resolved at End
	Seq     SeqID  `json:"seq,omitempty"`     // owning sequence span, 0 = immediate
	Threads int    `json:"threads,omitempty"` // goroutine fan-out budget

	// First operand dims / nnz; second operand dims / nnz (vectors: Cols 1).
	ARows  int `json:"a_rows,omitempty"`
	ACols  int `json:"a_cols,omitempty"`
	ANNZ   int `json:"a_nnz,omitempty"`
	BRows  int `json:"b_rows,omitempty"`
	BCols  int `json:"b_cols,omitempty"`
	BNNZ   int `json:"b_nnz,omitempty"`
	OutNNZ int `json:"out_nnz"` // result nnz

	Flops int64 `json:"flops,omitempty"` // call-time flop estimate

	// Per-call deltas of the kernel counter group, captured around the
	// kernel's execution. Attribution is approximate when kernels from other
	// goroutines overlap this one (the group totals remain exact); each
	// value is clamped at zero so a concurrent Reset cannot go negative.
	ScratchBytes    int64 `json:"scratch_bytes,omitempty"`
	DenseRanges     int64 `json:"dense_ranges,omitempty"`
	HashRanges      int64 `json:"hash_ranges,omitempty"`
	PushCalls       int64 `json:"push_calls,omitempty"`
	PullCalls       int64 `json:"pull_calls,omitempty"`
	TransposeMats   int64 `json:"transpose_mats,omitempty"` // cache misses; 0 with Route "transpose" = cache hit
	BudgetDegrades  int64 `json:"budget_degrades,omitempty"`
	PanicsRecovered int64 `json:"panics_recovered,omitempty"`
	MonoKernels     int64 `json:"mono_kernels,omitempty"`
	ClosureFalls    int64 `json:"closure_fallbacks,omitempty"`
	FormatConvs     int64 `json:"format_conversions,omitempty"`

	// Per-call deltas of the blocked-engine counter group (same attribution
	// caveats as the kernel counter deltas above).
	BlockedOps   int64 `json:"blocked_ops,omitempty"`
	TileTasks    int64 `json:"tile_tasks,omitempty"`
	BlockedFalls int64 `json:"blocked_fallbacks,omitempty"`

	Steps int `json:"steps,omitempty"` // sequence spans: drained step count

	Start int64  `json:"start_ns"` // ns since the obsv epoch
	Dur   int64  `json:"dur_ns"`  // wall time
	Err   string `json:"err,omitempty"`

	// Counter-group snapshots taken at Begin; live here rather than in Exec
	// so the zero Exec the disabled path returns stays two words.
	kcBefore [kcLen]int64
	bkBefore [bkLen]int64
}

// A records the first operand's shape; nil-safe and chainable so call sites
// can build events without guarding every field store.
func (e *Event) A(rows, cols, nnz int) *Event {
	if e != nil {
		e.ARows, e.ACols, e.ANNZ = rows, cols, nnz
	}
	return e
}

// B records the second operand's shape; nil-safe and chainable.
func (e *Event) B(rows, cols, nnz int) *Event {
	if e != nil {
		e.BRows, e.BCols, e.BNNZ = rows, cols, nnz
	}
	return e
}

// WithFlops records the call-time flop estimate; nil-safe and chainable.
func (e *Event) WithFlops(f int64) *Event {
	if e != nil {
		e.Flops = f
	}
	return e
}

// WithRoute records the kernel route requested at call time ("push", "pull",
// "auto", "transpose", ...); nil-safe and chainable. Adaptive routes are
// refined at End from the counter deltas (see resolveRoute).
func (e *Event) WithRoute(r string) *Event {
	if e != nil {
		e.Route = r
	}
	return e
}

// WithThreads records the goroutine fan-out budget; nil-safe and chainable.
func (e *Event) WithThreads(n int) *Event {
	if e != nil {
		e.Threads = n
	}
	return e
}

// Exec is the in-flight half of a kernel event: Begin captures the start
// time and a counter snapshot, End fills the deltas and hands the event to
// the sinks. It is passed by value and holds no heap state of its own, so
// the disabled path (zero Exec) allocates nothing.
type Exec struct {
	ev    *Event
	start int64
}

// Begin starts measuring one kernel execution. ev is the call-time half of
// the event (nil when observation was off at call time); seq attributes the
// event to the sequence drain executing it.
func Begin(ev *Event, seq SeqID) Exec {
	if ev == nil || !Active() {
		return Exec{}
	}
	ev.Seq = seq
	ev.kcBefore = KernelCounters.values()
	ev.bkBefore = BlockCounters.bvalues()
	return Exec{ev: ev, start: now()}
}

// End completes the measurement and emits the event. err is recorded (the
// event is still emitted — a failing kernel is exactly what a trace should
// show); outNNZ is the result's stored-entry count.
func (x Exec) End(outNNZ int, err error) {
	if x.ev == nil {
		return
	}
	ev := x.ev
	ev.Start = x.start
	ev.Dur = now() - x.start
	ev.OutNNZ = outNNZ
	if ev.Kind == "" {
		ev.Kind = "kernel"
	}
	kc := KernelCounters.values()
	ev.DenseRanges = deltaClamp(kc[KCDenseRanges], ev.kcBefore[KCDenseRanges])
	ev.HashRanges = deltaClamp(kc[KCHashRanges], ev.kcBefore[KCHashRanges])
	ev.ScratchBytes = deltaClamp(kc[KCScratchBytes], ev.kcBefore[KCScratchBytes])
	ev.PushCalls = deltaClamp(kc[KCPushCalls], ev.kcBefore[KCPushCalls])
	ev.PullCalls = deltaClamp(kc[KCPullCalls], ev.kcBefore[KCPullCalls])
	ev.TransposeMats = deltaClamp(kc[KCTransposeMats], ev.kcBefore[KCTransposeMats])
	ev.BudgetDegrades = deltaClamp(kc[KCBudgetDegrades], ev.kcBefore[KCBudgetDegrades])
	ev.PanicsRecovered = deltaClamp(kc[KCPanicsRecovered], ev.kcBefore[KCPanicsRecovered])
	ev.MonoKernels = deltaClamp(kc[KCMonoKernels], ev.kcBefore[KCMonoKernels])
	ev.ClosureFalls = deltaClamp(kc[KCClosureFallbacks], ev.kcBefore[KCClosureFallbacks])
	ev.FormatConvs = deltaClamp(kc[KCFormatConversions], ev.kcBefore[KCFormatConversions])
	bk := BlockCounters.bvalues()
	ev.BlockedOps = deltaClamp(bk[BKBlockedOps], ev.bkBefore[BKBlockedOps])
	ev.TileTasks = deltaClamp(bk[BKTileTasks], ev.bkBefore[BKTileTasks])
	ev.BlockedFalls = deltaClamp(bk[BKBlockedFallbacks], ev.bkBefore[BKBlockedFallbacks])
	ev.Route = resolveRoute(ev)
	if err != nil {
		ev.Err = err.Error()
	}
	emit(ev)
}

// deltaClamp returns after-before, clamped at zero: a concurrent group Reset
// between Begin and End must not produce a negative per-call delta.
func deltaClamp(after, before int64) int64 {
	if d := after - before; d > 0 {
		return d
	}
	return 0
}

// resolveRoute refines an adaptive route request with the counter deltas the
// kernel actually produced: "auto" becomes the accumulator(s) observed, and
// any route a monomorphized semiring kernel served gains a "+mono" suffix.
func resolveRoute(ev *Event) string {
	route := ev.Route
	if route == "auto" {
		switch {
		case ev.DenseRanges > 0 && ev.HashRanges > 0:
			route = "auto(mixed)"
		case ev.HashRanges > 0:
			route = "auto(hash)"
		case ev.DenseRanges > 0:
			route = "auto(dense)"
		}
	}
	if ev.MonoKernels > 0 {
		route += "+mono"
	}
	if ev.BlockedOps > 0 {
		route += "+blocked"
	}
	return route
}

// Span is an open sequence span: one deferred-sequence drain from the first
// pending step through the last. The zero Span (observation off) is inert.
type Span struct {
	id    SeqID
	kind  string
	start int64
}

// SeqBegin opens a span for a sequence drain of the given object kind
// ("matrix", "vector"). When no sink is active it returns the zero Span.
func SeqBegin(kind string) Span {
	if !Active() {
		return Span{}
	}
	return Span{id: SeqID(seqCounter.Add(1)), kind: kind, start: now()}
}

// ID returns the span's sequence id (0 for the inert zero Span); kernel
// events executed inside the drain carry it in their Seq field.
func (s Span) ID() SeqID { return s.id }

// End closes the span, emitting one "sequence" event covering the drained
// steps. Children parent under it in the trace by sharing its Seq id and
// falling inside its [Start, Start+Dur] window.
func (s Span) End(steps int) {
	if s.id == 0 {
		return
	}
	emit(&Event{
		Op:    "sequence(" + s.kind + ")",
		Kind:  "sequence",
		Seq:   s.id,
		Steps: steps,
		Start: s.start,
		Dur:   now() - s.start,
	})
}

// emit fans a completed event out to whichever sinks are enabled.
func emit(ev *Event) {
	s := state.Load()
	if s&stMetrics != 0 {
		recordMetrics(ev)
	}
	if s&stTrace != 0 {
		recordTrace(ev)
	}
}

package obsv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// metricsOn enables the registry for one test and restores the off state.
func metricsOn(t *testing.T) {
	t.Helper()
	EnableMetrics(true)
	t.Cleanup(func() {
		EnableMetrics(false)
		ResetMetrics()
	})
}

func TestGroupAddGetSnapshot(t *testing.T) {
	g := NewGroup("a", "b", "c")
	g.Add(0, 5)
	g.Add(1, 7)
	g.Add(1, 1)
	if got := g.Get(1); got != 8 {
		t.Fatalf("Get(1) = %d, want 8", got)
	}
	snap := g.Snapshot()
	want := []int64{5, 8, 0}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", snap, want)
		}
	}
	if names := g.Names(); len(names) != 3 || names[2] != "c" {
		t.Fatalf("Names = %v", names)
	}
}

func TestGroupResetReturnsFinalValues(t *testing.T) {
	g := NewGroup("x", "y")
	g.Add(0, 3)
	g.Add(1, 4)
	old := g.Reset()
	if old[0] != 3 || old[1] != 4 {
		t.Fatalf("Reset returned %v, want [3 4]", old)
	}
	if snap := g.Snapshot(); snap[0] != 0 || snap[1] != 0 {
		t.Fatalf("post-reset Snapshot = %v, want zeros", snap)
	}
}

// TestGroupResetNeverTears hammers a group with concurrent adders that bump
// two counters in lockstep while a resetter swaps banks: any snapshot must
// observe the pair equal (same bank — the torn-group race the old
// per-variable Store(0) reset had) and never negative.
func TestGroupResetNeverTears(t *testing.T) {
	g := NewGroup("left", "right")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					// Same bank for both adds: Add loads the bank once per
					// call, but both calls between two Resets land together
					// or are retired together.
					b := g.bank.Load()
					b.c[0].Add(1)
					b.c[1].Add(1)
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		snap := g.Snapshot()
		if snap[0] != snap[1] {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: %v", snap)
		}
		if i%10 == 0 {
			g.Reset()
		}
	}
	close(stop)
	wg.Wait()
}

func TestBeginEndRecordsMetrics(t *testing.T) {
	metricsOn(t)
	ev := (&Event{Op: "TestOp", Kind: "kernel"}).
		A(10, 10, 30).B(10, 1, 4).WithFlops(123).WithThreads(2)
	x := Begin(ev, 0)
	KernelCounters.Add(KCHashRanges, 3)
	KernelCounters.Add(KCScratchBytes, 256)
	x.End(17, nil)

	m := MetricsSnapshot()["TestOp"]
	if m.Count != 1 || m.Errors != 0 {
		t.Fatalf("count/errors = %d/%d", m.Count, m.Errors)
	}
	if m.Flops != 123 || m.OutNNZ != 17 {
		t.Fatalf("flops/outNNZ = %d/%d", m.Flops, m.OutNNZ)
	}
	if m.HashRanges != 3 || m.ScratchBytes != 256 {
		t.Fatalf("per-call deltas not recorded: %+v", m)
	}
	if m.TotalNs < 0 {
		t.Fatalf("TotalNs = %d", m.TotalNs)
	}
}

func TestEndEmitsOnError(t *testing.T) {
	metricsOn(t)
	x := Begin(&Event{Op: "FailOp"}, 0)
	x.End(0, errors.New("boom"))
	m := MetricsSnapshot()["FailOp"]
	if m.Count != 1 || m.Errors != 1 {
		t.Fatalf("failing kernel not recorded: %+v", m)
	}
}

func TestBeginNilEventIsInert(t *testing.T) {
	metricsOn(t)
	x := Begin(nil, 9)
	x.End(100, nil) // must not panic or record
	if len(MetricsSnapshot()) != 0 {
		t.Fatalf("nil event recorded: %v", MetricsOps())
	}
}

func TestResolveRoute(t *testing.T) {
	cases := []struct {
		route       string
		dense, hash int64
		want        string
	}{
		{"auto", 2, 0, "auto(dense)"},
		{"auto", 0, 2, "auto(hash)"},
		{"auto", 1, 1, "auto(mixed)"},
		{"auto", 0, 0, "auto"},
		{"push", 5, 5, "push"}, // explicit routes pass through
		{"", 1, 0, ""},
	}
	for _, c := range cases {
		ev := &Event{Route: c.route, DenseRanges: c.dense, HashRanges: c.hash}
		if got := resolveRoute(ev); got != c.want {
			t.Errorf("resolveRoute(%q, d=%d, h=%d) = %q, want %q",
				c.route, c.dense, c.hash, got, c.want)
		}
	}
}

func TestMetricsOpsSorted(t *testing.T) {
	metricsOn(t)
	for _, op := range []string{"zeta", "alpha", "mid"} {
		Begin(&Event{Op: op}, 0).End(0, nil)
	}
	ops := MetricsOps()
	want := []string{"alpha", "mid", "zeta"}
	if len(ops) != 3 || ops[0] != want[0] || ops[1] != want[1] || ops[2] != want[2] {
		t.Fatalf("MetricsOps = %v, want %v", ops, want)
	}
}

func TestSequenceSpanEvent(t *testing.T) {
	metricsOn(t)
	span := SeqBegin("matrix")
	if span.ID() == 0 {
		t.Fatal("active span has id 0")
	}
	Begin(&Event{Op: "Child"}, span.ID()).End(0, nil)
	span.End(3)
	m := MetricsSnapshot()["sequence(matrix)"]
	if m.Count != 1 || m.Steps != 3 {
		t.Fatalf("sequence span metrics = %+v", m)
	}
}

func TestInertSpanWhenDisabled(t *testing.T) {
	if Active() {
		t.Skip("another sink active")
	}
	span := SeqBegin("vector")
	if span.ID() != 0 {
		t.Fatalf("disabled SeqBegin allocated id %d", span.ID())
	}
	span.End(5) // must not panic
}

// TestTraceChromeSchema is the golden-schema test: a writer session's output
// must be a valid Chrome trace-event file — metadata first, every event with
// ph "X", µs timestamps, the sequence id as tid.
func TestTraceChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := TraceToWriter(&buf); err != nil {
		t.Fatal(err)
	}
	span := SeqBegin("matrix")
	ev := (&Event{Op: "MxM", Kind: "kernel", Route: "auto"}).
		A(4, 4, 9).B(4, 4, 9).WithFlops(42).WithThreads(2)
	x := Begin(ev, span.ID())
	KernelCounters.Add(KCDenseRanges, 1)
	x.End(11, nil)
	span.End(1)
	if !Tracing() {
		t.Fatal("Tracing() false with active session")
	}
	if TraceBuffered() != 2 {
		t.Fatalf("buffered %d events, want 2", TraceBuffered())
	}
	if err := EndTrace(); err != nil {
		t.Fatal(err)
	}
	if Tracing() {
		t.Fatal("Tracing() true after EndTrace")
	}

	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) != 3 { // metadata + kernel + span
		t.Fatalf("traceEvents has %d entries, want 3", len(tf.TraceEvents))
	}
	meta := tf.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "process_name" {
		t.Fatalf("first event not process metadata: %+v", meta)
	}
	kernel := tf.TraceEvents[1]
	if kernel.Name != "MxM" || kernel.Cat != "kernel" || kernel.Ph != "X" {
		t.Fatalf("kernel event = %+v", kernel)
	}
	if kernel.Tid == 0 {
		t.Fatal("kernel event lost its sequence tid")
	}
	if kernel.Args["route"] != "auto(dense)" {
		t.Fatalf("route not resolved: %v", kernel.Args["route"])
	}
	if kernel.Args["flops"] != float64(42) {
		t.Fatalf("flops arg = %v", kernel.Args["flops"])
	}
	seq := tf.TraceEvents[2]
	if seq.Cat != "sequence" || seq.Tid != kernel.Tid {
		t.Fatalf("span does not share the kernel's tid: %+v vs %+v", seq, kernel)
	}
	if kernel.Ts < seq.Ts || kernel.Ts+kernel.Dur > seq.Ts+seq.Dur+0.001 {
		t.Fatalf("kernel [%f,%f] outside span [%f,%f]",
			kernel.Ts, kernel.Ts+kernel.Dur, seq.Ts, seq.Ts+seq.Dur)
	}
}

func TestTraceSecondSessionRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := TraceToWriter(&buf); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := EndTrace(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := TraceToWriter(&buf); err != ErrTracing {
		t.Fatalf("second session: err = %v, want ErrTracing", err)
	}
	if err := TraceToFile(filepath.Join(t.TempDir(), "t.json")); err != ErrTracing {
		t.Fatalf("second file session: err = %v, want ErrTracing", err)
	}
}

func TestTraceFileFlushCumulative(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := TraceToFile(path); err != nil {
		t.Fatal(err)
	}
	Begin(&Event{Op: "One"}, 0).End(0, nil)
	if err := FlushTrace(); err != nil {
		t.Fatal(err)
	}
	Begin(&Event{Op: "Two"}, 0).End(0, nil)
	if err := EndTrace(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tf); err != nil {
		t.Fatal(err)
	}
	// Cumulative: the final file holds both events, not just the post-flush one.
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("final file has %d events, want metadata + One + Two", len(tf.TraceEvents))
	}
	if tf.TraceEvents[1].Name != "One" || tf.TraceEvents[2].Name != "Two" {
		t.Fatalf("events = %+v", tf.TraceEvents)
	}
}

func TestTraceToFileBadPathFailsEarly(t *testing.T) {
	if err := TraceToFile(filepath.Join(t.TempDir(), "missing-dir", "t.json")); err == nil {
		t.Fatal("TraceToFile accepted an uncreatable path")
	}
	if Tracing() {
		t.Fatal("failed TraceToFile left the trace bit set")
	}
}

func TestFlushWithoutSession(t *testing.T) {
	if err := FlushTrace(); err != ErrNotTracing {
		t.Fatalf("FlushTrace = %v, want ErrNotTracing", err)
	}
	if err := EndTrace(); err != ErrNotTracing {
		t.Fatalf("EndTrace = %v, want ErrNotTracing", err)
	}
}

func TestHTTPHandler(t *testing.T) {
	metricsOn(t)
	Begin(&Event{Op: "HTTPOp"}, 0).End(3, nil)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/grb", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		MetricsEnabled bool                 `json:"metrics_enabled"`
		Ops            map[string]OpMetrics `json:"ops"`
		Counters       map[string]int64     `json:"kernel_counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("endpoint is not JSON: %v", err)
	}
	if !doc.MetricsEnabled {
		t.Fatal("metrics_enabled false while collecting")
	}
	if doc.Ops["HTTPOp"].Count != 1 {
		t.Fatalf("ops = %v", doc.Ops)
	}
	if _, ok := doc.Counters["dense_ranges"]; !ok {
		t.Fatalf("kernel_counters missing dense_ranges: %v", doc.Counters)
	}
}

// TestDisabledPathAllocatesNothing pins the overhead contract: with every
// sink off, the full emit-point pattern (Active check, nil event through
// Begin/End, inert span) performs zero heap allocations.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	if Active() {
		t.Skip("a sink is active")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		var ev *Event
		if Active() {
			ev = &Event{Op: "MxM"}
		}
		x := Begin(ev, 0)
		x.End(0, nil)
		span := SeqBegin("matrix")
		span.End(0)
	})
	if allocs != 0 {
		t.Fatalf("disabled emit path allocates %.1f times per op, want 0", allocs)
	}
}

// TestParallelEmitRace exercises every sink from concurrent goroutines; run
// under -race (the race tier does) it is the data-race regression test for
// the whole subsystem.
func TestParallelEmitRace(t *testing.T) {
	metricsOn(t)
	var buf bytes.Buffer
	if err := TraceToWriter(&buf); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				span := SeqBegin("matrix")
				ev := (&Event{Op: fmt.Sprintf("Op%d", w%4)}).A(10, 10, 20)
				x := Begin(ev, span.ID())
				KernelCounters.Add(KCHashRanges, 1)
				x.End(i, nil)
				span.End(1)
				if i%50 == 0 {
					KernelCounters.Reset()
					MetricsSnapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := EndTrace(); err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace from parallel emit is not valid JSON: %v", err)
	}
	total := int64(0)
	for _, m := range MetricsSnapshot() {
		total += m.Count
	}
	if total != 8*200*2 { // per iteration: one kernel + one span event
		t.Fatalf("metrics recorded %d events, want %d", total, 8*200*2)
	}
}

// BenchmarkDisabledEmit measures the contract the package doc states: one
// atomic load, no allocation, per emit point with every sink off.
func BenchmarkDisabledEmit(b *testing.B) {
	if Active() {
		b.Skip("a sink is active")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var ev *Event
		if Active() {
			ev = &Event{Op: "MxM"}
		}
		x := Begin(ev, 0)
		x.End(0, nil)
	}
}

// BenchmarkEnabledMetricsEmit is the reference point for the enabled path.
func BenchmarkEnabledMetricsEmit(b *testing.B) {
	EnableMetrics(true)
	defer func() {
		EnableMetrics(false)
		ResetMetrics()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := (&Event{Op: "MxM", Kind: "kernel"}).A(100, 100, 500).WithFlops(1000)
		x := Begin(ev, 0)
		x.End(400, nil)
	}
}

package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The metrics registry aggregates events per operation name. It replaces the
// ad-hoc global counters as the structured way to ask "what did the library
// do": counts, wall time, flops, scratch, routing splits — per user-level op
// rather than summed across everything.

// opStats is the mutable per-op accumulator; all fields are atomics so
// concurrent kernels record without a lock.
type opStats struct {
	count, errors              atomic.Int64
	ns, flops, scratch, outNNZ atomic.Int64
	dense, hash, push, pull    atomic.Int64
	tmats, steps               atomic.Int64
	degrades, panics           atomic.Int64
}

var registry sync.Map // op name -> *opStats

// OpMetrics is one operation's aggregated totals since the last ResetMetrics.
type OpMetrics struct {
	Count         int64 `json:"count"`
	Errors        int64 `json:"errors,omitempty"`
	TotalNs       int64 `json:"total_ns"`
	Flops         int64 `json:"flops,omitempty"`
	ScratchBytes  int64 `json:"scratch_bytes,omitempty"`
	OutNNZ        int64 `json:"out_nnz,omitempty"`
	DenseRanges   int64 `json:"dense_ranges,omitempty"`
	HashRanges    int64 `json:"hash_ranges,omitempty"`
	PushCalls     int64 `json:"push_calls,omitempty"`
	PullCalls     int64 `json:"pull_calls,omitempty"`
	TransposeMats int64 `json:"transpose_mats,omitempty"`
	Steps         int64 `json:"steps,omitempty"`
	// Hardening telemetry: budget-forced route changes (hash fallback,
	// thread halving, uncached transpose) and kernel panics recovered into
	// parked §V errors, attributed to the op whose drain triggered them.
	BudgetDegrades  int64 `json:"budget_degrades,omitempty"`
	PanicsRecovered int64 `json:"panics_recovered,omitempty"`
}

// EnableMetrics turns the per-op metrics registry on or off, returning the
// previous setting. Off (the default) keeps emit points allocation-free.
func EnableMetrics(on bool) bool { return setStateBit(stMetrics, on) }

// MetricsEnabled reports whether the registry is collecting.
func MetricsEnabled() bool { return state.Load()&stMetrics != 0 }

// statsFor returns the accumulator for op, creating it on first use.
func statsFor(op string) *opStats {
	if s, ok := registry.Load(op); ok {
		return s.(*opStats)
	}
	s, _ := registry.LoadOrStore(op, &opStats{})
	return s.(*opStats)
}

// recordMetrics folds one completed event into the registry.
func recordMetrics(ev *Event) {
	s := statsFor(ev.Op)
	s.count.Add(1)
	if ev.Err != "" {
		s.errors.Add(1)
	}
	s.ns.Add(ev.Dur)
	s.flops.Add(ev.Flops)
	s.scratch.Add(ev.ScratchBytes)
	s.outNNZ.Add(int64(ev.OutNNZ))
	s.dense.Add(ev.DenseRanges)
	s.hash.Add(ev.HashRanges)
	s.push.Add(ev.PushCalls)
	s.pull.Add(ev.PullCalls)
	s.tmats.Add(ev.TransposeMats)
	s.steps.Add(int64(ev.Steps))
	s.degrades.Add(ev.BudgetDegrades)
	s.panics.Add(ev.PanicsRecovered)
}

// MetricsSnapshot returns the per-op totals collected since the last reset.
func MetricsSnapshot() map[string]OpMetrics {
	out := make(map[string]OpMetrics)
	registry.Range(func(k, v any) bool {
		s := v.(*opStats)
		out[k.(string)] = OpMetrics{
			Count:         s.count.Load(),
			Errors:        s.errors.Load(),
			TotalNs:       s.ns.Load(),
			Flops:         s.flops.Load(),
			ScratchBytes:  s.scratch.Load(),
			OutNNZ:        s.outNNZ.Load(),
			DenseRanges:   s.dense.Load(),
			HashRanges:    s.hash.Load(),
			PushCalls:     s.push.Load(),
			PullCalls:     s.pull.Load(),
			TransposeMats:   s.tmats.Load(),
			Steps:           s.steps.Load(),
			BudgetDegrades:  s.degrades.Load(),
			PanicsRecovered: s.panics.Load(),
		}
		return true
	})
	return out
}

// MetricsOps returns the recorded op names in sorted order — stable output
// for logs and the HTTP endpoint.
func MetricsOps() []string {
	var ops []string
	registry.Range(func(k, _ any) bool {
		ops = append(ops, k.(string))
		return true
	})
	sort.Strings(ops)
	return ops
}

// ResetMetrics drops every per-op accumulator.
func ResetMetrics() {
	registry.Range(func(k, _ any) bool {
		registry.Delete(k)
		return true
	})
}

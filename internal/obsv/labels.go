package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The label registry aggregates request-level activity per caller-supplied
// label — in the serving layer, one label per tenant. It deliberately lives
// beside (not inside) the per-op registry: ops answer "what did the library
// do", labels answer "who asked for it". A serving process records one
// labeled observation per request, so the rates here are request rates, not
// kernel rates, and stay meaningful even when per-op metrics are disabled.

// labelStats is the mutable per-(label, op) accumulator; atomics only, so
// concurrent request handlers record without a lock.
type labelStats struct {
	requests, errors, ns atomic.Int64
	byOp                 sync.Map // op name -> *labelOpStats
}

type labelOpStats struct {
	requests, errors, ns atomic.Int64
}

var labelRegistry sync.Map // label -> *labelStats

// LabelOpMetrics is one (label, op) pair's totals since the last reset.
type LabelOpMetrics struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors,omitempty"`
	TotalNs  int64 `json:"total_ns"`
}

// LabelMetrics is one label's aggregated totals since the last ResetLabels.
type LabelMetrics struct {
	Requests int64                     `json:"requests"`
	Errors   int64                     `json:"errors,omitempty"`
	TotalNs  int64                     `json:"total_ns"`
	ByOp     map[string]LabelOpMetrics `json:"by_op,omitempty"`
}

// NoteLabeled folds one completed request into the label registry:
// label identifies the caller (tenant), op the operation it asked for,
// ns the request's wall time, and isErr whether it failed. Always on —
// one call per request is far below the emit-point cost concerns that
// gate the kernel-level registries.
func NoteLabeled(label, op string, ns int64, isErr bool) {
	ls := labelsFor(label)
	ls.requests.Add(1)
	ls.ns.Add(ns)
	if isErr {
		ls.errors.Add(1)
	}
	if op == "" {
		return
	}
	var os *labelOpStats
	if v, ok := ls.byOp.Load(op); ok {
		os = v.(*labelOpStats)
	} else {
		v, _ := ls.byOp.LoadOrStore(op, &labelOpStats{})
		os = v.(*labelOpStats)
	}
	os.requests.Add(1)
	os.ns.Add(ns)
	if isErr {
		os.errors.Add(1)
	}
}

// labelsFor returns the accumulator for label, creating it on first use.
func labelsFor(label string) *labelStats {
	if s, ok := labelRegistry.Load(label); ok {
		return s.(*labelStats)
	}
	s, _ := labelRegistry.LoadOrStore(label, &labelStats{})
	return s.(*labelStats)
}

// LabelsSnapshot returns the per-label totals since the last reset.
func LabelsSnapshot() map[string]LabelMetrics {
	out := make(map[string]LabelMetrics)
	labelRegistry.Range(func(k, v any) bool {
		s := v.(*labelStats)
		lm := LabelMetrics{
			Requests: s.requests.Load(),
			Errors:   s.errors.Load(),
			TotalNs:  s.ns.Load(),
		}
		s.byOp.Range(func(ok_, ov any) bool {
			os := ov.(*labelOpStats)
			if lm.ByOp == nil {
				lm.ByOp = make(map[string]LabelOpMetrics)
			}
			lm.ByOp[ok_.(string)] = LabelOpMetrics{
				Requests: os.requests.Load(),
				Errors:   os.errors.Load(),
				TotalNs:  os.ns.Load(),
			}
			return true
		})
		out[k.(string)] = lm
		return true
	})
	return out
}

// Labels returns the recorded label names in sorted order.
func Labels() []string {
	var names []string
	labelRegistry.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// ResetLabels drops every per-label accumulator.
func ResetLabels() {
	labelRegistry.Range(func(k, _ any) bool {
		labelRegistry.Delete(k)
		return true
	})
}

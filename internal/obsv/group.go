package obsv

import "sync/atomic"

// Group is a named set of int64 counters with group-atomic snapshot and
// reset: the counters live in one bank behind an atomic pointer, and Reset
// swaps in a fresh bank, so a reader never observes a torn group (some
// counters reset, others not) — the race the old per-variable Store(0) reset
// in internal/sparse had. Increments racing a Reset may land in the retired
// bank and be dropped with it; that window is inherent to any reset of
// concurrently-written counters and is the same as before.
type Group struct {
	names []string
	bank  atomic.Pointer[counterBank]
}

type counterBank struct {
	c []atomic.Int64
}

// NewGroup creates a group with one counter per name.
func NewGroup(names ...string) *Group {
	g := &Group{names: names}
	g.bank.Store(&counterBank{c: make([]atomic.Int64, len(names))})
	return g
}

// Add atomically adds d to counter i. One atomic pointer load plus one
// atomic add — cheap enough for per-row-range hot paths.
func (g *Group) Add(i int, d int64) { g.bank.Load().c[i].Add(d) }

// Get returns the current value of counter i.
func (g *Group) Get(i int) int64 { return g.bank.Load().c[i].Load() }

// Names returns the counter names, index-aligned with Snapshot.
func (g *Group) Names() []string { return g.names }

// Snapshot returns all counters read from one bank: the values are mutually
// consistent with respect to Reset (all pre- or all post-reset).
func (g *Group) Snapshot() []int64 {
	b := g.bank.Load()
	out := make([]int64, len(b.c))
	for i := range b.c {
		out[i] = b.c[i].Load()
	}
	return out
}

// Reset atomically replaces the bank with a zeroed one and returns the
// retired bank's final values.
func (g *Group) Reset() []int64 {
	fresh := &counterBank{c: make([]atomic.Int64, len(g.names))}
	old := g.bank.Swap(fresh)
	out := make([]int64, len(old.c))
	for i := range old.c {
		out[i] = old.c[i].Load()
	}
	return out
}

// values reads the bank into a fixed array without allocating; sized for the
// kernel counter group, which is the only group on the Begin/End hot path.
func (g *Group) values() [kcLen]int64 {
	var out [kcLen]int64
	b := g.bank.Load()
	for i := 0; i < len(b.c) && i < kcLen; i++ {
		out[i] = b.c[i].Load()
	}
	return out
}

// bvalues is values for the block counter group, which Begin/End also
// snapshots so kernel events can carry per-call blocked-engine deltas.
func (g *Group) bvalues() [bkLen]int64 {
	var out [bkLen]int64
	b := g.bank.Load()
	for i := 0; i < len(b.c) && i < bkLen; i++ {
		out[i] = b.c[i].Load()
	}
	return out
}

// Indices of the kernel-routing counter group. internal/sparse increments
// these at its routing decisions; the grb compatibility shims
// (KernelCounts, DirectionCounts, TransposeCount, KernelScratchBytes,
// ResetKernelCounts) read and reset them through internal/sparse.
const (
	KCDenseRanges    = iota // multiply row ranges served by the dense SPA
	KCHashRanges            // multiply row ranges served by the hash SPA
	KCScratchBytes          // accumulator scratch allocated by kernels
	KCPushCalls             // matrix-vector products served by the push kernel
	KCPullCalls             // matrix-vector products served by the pull kernel
	KCTransposeMats         // transpose materializations (cache misses)
	KCBudgetDegrades        // budget-forced route changes (hash fallback, thread halving, uncached transpose)
	KCPanicsRecovered       // kernel panics recovered into parked §V errors
	KCMonoKernels           // multiply calls served by a monomorphized semiring kernel
	KCClosureFallbacks      // multiply calls that fell back to the generic closure kernel
	KCFormatConversions     // sparse→bitmap/dense block-format materializations (cache misses)
	kcLen
)

// KernelCounters is the kernel-routing counter group, shared between
// internal/sparse (writer) and the sinks (readers).
var KernelCounters = NewGroup(
	"dense_ranges",
	"hash_ranges",
	"scratch_bytes",
	"push_calls",
	"pull_calls",
	"transpose_materializations",
	"budget_degrades",
	"panics_recovered",
	"mono_kernels",
	"closure_fallbacks",
	"format_conversions",
)

// Indices of the 2D-blocked engine counter group. Registered as a bank from
// day one so snapshot/reset are group-atomic — no per-variable Store(0) torn
// reads to fix later (the PR 4 race the kernel counters needed a follow-up
// for).
const (
	BKBlockedOps       = iota // multiply calls served by the blocked (SUMMA) engine
	BKTileTasks               // tile tasks executed by the blocked plans
	BKTileDense               // tile tasks served by the dense tile SPA
	BKTileHash                // tile tasks served by the hash tile accumulator
	BKAutoBlocks              // blocked views built by the Wait-time auto-blocker
	BKBlockedFallbacks        // blocked-route requests that fell back to the flat engine
	BKTileScratchBytes        // per-tile accumulator scratch allocated by blocked plans
	BKSpanFlops               // modeled parallel span (critical-path flops) of SpGEMM calls
	BKWorkFlops               // total flops of span-instrumented SpGEMM calls
	bkLen
)

// BlockCounters is the blocked-engine counter group, shared between
// internal/sparse (writer) and the sinks (readers).
var BlockCounters = NewGroup(
	"blocked_ops",
	"tile_tasks",
	"tile_dense",
	"tile_hash",
	"auto_blocks",
	"blocked_fallbacks",
	"tile_scratch_bytes",
	"span_flops",
	"work_flops",
)

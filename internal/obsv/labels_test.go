package obsv

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestLabelRegistry(t *testing.T) {
	ResetLabels()
	t.Cleanup(ResetLabels)
	NoteLabeled("acme", "bfs", 100, false)
	NoteLabeled("acme", "bfs", 50, true)
	NoteLabeled("acme", "pagerank", 200, false)
	NoteLabeled("umbrella", "bfs", 10, false)
	NoteLabeled("plain", "", 5, false) // op-less observation still counts

	snap := LabelsSnapshot()
	acme := snap["acme"]
	if acme.Requests != 3 || acme.Errors != 1 || acme.TotalNs != 350 {
		t.Fatalf("acme = %+v", acme)
	}
	if bfs := acme.ByOp["bfs"]; bfs.Requests != 2 || bfs.Errors != 1 || bfs.TotalNs != 150 {
		t.Fatalf("acme/bfs = %+v", bfs)
	}
	if pr := acme.ByOp["pagerank"]; pr.Requests != 1 || pr.Errors != 0 {
		t.Fatalf("acme/pagerank = %+v", pr)
	}
	if u := snap["umbrella"]; u.Requests != 1 || len(u.ByOp) != 1 {
		t.Fatalf("umbrella = %+v", u)
	}
	if p := snap["plain"]; p.Requests != 1 || p.ByOp != nil {
		t.Fatalf("plain = %+v", p)
	}
	if got := Labels(); len(got) != 3 || got[0] != "acme" || got[1] != "plain" || got[2] != "umbrella" {
		t.Fatalf("Labels() = %v", got)
	}
	ResetLabels()
	if snap := LabelsSnapshot(); len(snap) != 0 {
		t.Fatalf("after reset: %v", snap)
	}
}

func TestLabelRegistryConcurrent(t *testing.T) {
	ResetLabels()
	t.Cleanup(ResetLabels)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := []string{"a", "b"}[g%2]
			for i := 0; i < 1000; i++ {
				NoteLabeled(label, "bfs", 1, i%10 == 0)
			}
		}(g)
	}
	wg.Wait()
	snap := LabelsSnapshot()
	if tot := snap["a"].Requests + snap["b"].Requests; tot != 8000 {
		t.Fatalf("total requests = %d", tot)
	}
	if ns := snap["a"].TotalNs + snap["b"].TotalNs; ns != 8000 {
		t.Fatalf("total ns = %d", ns)
	}
}

func TestHandlerIncludesTenants(t *testing.T) {
	ResetLabels()
	t.Cleanup(ResetLabels)
	NoteLabeled("acme", "bfs", 42, false)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/grb", nil))
	var doc struct {
		Tenants map[string]LabelMetrics `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics doc does not parse: %v", err)
	}
	if doc.Tenants["acme"].Requests != 1 || doc.Tenants["acme"].TotalNs != 42 {
		t.Fatalf("tenants section = %+v", doc.Tenants)
	}
}

package grb

import (
	"sync"

	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// Vector is the opaque GraphBLAS vector object (GrB_Vector), a
// one-dimensional sparse array over domain T. Like Matrix it belongs to an
// execution context and obeys the sequence/completion model of §III in
// nonblocking mode.
type Vector[T any] struct {
	mu      sync.Mutex
	init    bool
	ctx     *Context
	vec     *sparse.Vec[T]
	pending []func(*Vector[T])
	tuples  []sparse.VTuple[T]
	derr    *Error
	errmsg  string
	seq     obsv.SeqID // open sequence span during a drain, else 0
}

// NewVector creates an empty vector of the given size over domain T
// (GrB_Vector_new).
func NewVector[T any](size Index, opts ...ObjOption) (*Vector[T], error) {
	var cfg objConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctx, err := resolveCtx(cfg.ctx)
	if err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, errf(InvalidValue, "NewVector: size must be positive (got %d)", size)
	}
	return &Vector[T]{init: true, ctx: ctx, vec: sparse.NewVec[T](size)}, nil
}

func (v *Vector[T]) check() error {
	if v == nil {
		return errf(NullPointer, "nil Vector")
	}
	if !v.init {
		return errf(UninitializedObject, "Vector not initialized (use NewVector)")
	}
	return nil
}

func (v *Vector[T]) context() (*Context, error) { return resolveCtx(v.ctx) }

// Context returns the execution context the vector belongs to.
func (v *Vector[T]) Context() (*Context, error) {
	if err := v.check(); err != nil {
		return nil, err
	}
	return v.context()
}

// SwitchContext moves the vector into a different execution context
// (GrB_Context_switch).
func (v *Vector[T]) SwitchContext(ctx *Context) error {
	if err := v.check(); err != nil {
		return err
	}
	if ctx == nil {
		return errf(NullPointer, "SwitchContext: nil context")
	}
	if ctx.isFreed() {
		return errf(UninitializedObject, "SwitchContext: freed context")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.materializeLocked(); err != nil {
		return err
	}
	v.ctx = ctx
	return nil
}

// materializeLocked drains the deferred sequence under a sequence span (see
// the Matrix counterpart for the attribution protocol).
func (v *Vector[T]) materializeLocked() error {
	var span obsv.Span
	if len(v.pending) > 0 || len(v.tuples) > 0 {
		span = obsv.SeqBegin("vector")
		v.seq = span.ID()
		defer func() { v.seq = 0 }()
	}
	steps := 0
	for len(v.pending) > 0 {
		op := v.pending[0]
		v.pending = v.pending[1:]
		op(v)
		steps++
	}
	if len(v.tuples) > 0 {
		var ev *obsv.Event
		if obsv.Active() {
			ev = &obsv.Event{Op: "Vector.setElement(merge)", Kind: "merge"}
			ev.A(v.vec.N, 1, v.vec.NNZ()).B(len(v.tuples), 1, len(v.tuples))
		}
		x := obsv.Begin(ev, v.seq)
		nv, err := runStep("setElement", func() (*sparse.Vec[T], error) {
			if err := sparse.MergeSite().Check(); err != nil {
				return nil, err
			}
			return sparse.MergeVTuples(v.vec, v.tuples)
		})
		v.tuples = nil
		steps++
		if err != nil {
			x.End(0, err)
			v.parkLocked(err)
		} else {
			x.End(nv.NNZ(), nil)
			v.vec = nv
		}
	}
	span.End(steps)
	if v.derr != nil {
		return v.derr
	}
	return nil
}

func (v *Vector[T]) parkLocked(err error) {
	if v.derr == nil {
		if e, ok := err.(*Error); ok {
			v.derr = e
		} else {
			v.derr = errf(Panic, "%v", err)
		}
		v.errmsg = v.derr.Error()
	}
}

func (v *Vector[T]) snapshot() (*sparse.Vec[T], error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.materializeLocked(); err != nil {
		return nil, err
	}
	return v.vec, nil
}

// enqueue appends a sequence step; ev (nil when observation was off at call
// time) is completed around the compute inside the drain, as in Matrix.
func (v *Vector[T]) enqueue(ctx *Context, ev *obsv.Event, compute func() (*sparse.Vec[T], error)) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.derr != nil {
		return v.derr
	}
	v.pending = append(v.pending, func(vv *Vector[T]) {
		x := obsv.Begin(ev, vv.seq)
		// Panic isolation, as in the Matrix step wrapper: see runStep.
		res, err := runStep("sequence step", compute)
		if err != nil {
			x.End(0, err)
			vv.parkLocked(err)
			return
		}
		x.End(res.NNZ(), nil)
		sparse.DebugCheckVec(res, "Vector sequence step")
		vv.vec = res
	})
	if ctx.Mode() == Blocking {
		return v.materializeLocked()
	}
	return nil
}

// Wait forces the sequence that defines the vector into the requested state
// (GrB_Vector_wait); see WaitMode.
func (v *Vector[T]) Wait(mode WaitMode) error {
	if err := v.check(); err != nil {
		return err
	}
	if mode != Complete && mode != Materialize {
		return errf(InvalidValue, "Wait: invalid mode %d", int(mode))
	}
	if _, err := v.context(); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	err := v.materializeLocked()
	if mode == Materialize {
		return err
	}
	return nil
}

// ErrorString returns the diagnostic string for the last error (GrB_error).
func (v *Vector[T]) ErrorString() string {
	if v == nil || !v.init {
		return ""
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.errmsg
}

// Free releases the vector (GrB_free).
func (v *Vector[T]) Free() error {
	if err := v.check(); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.init = false
	v.vec = nil
	v.pending = nil
	v.tuples = nil
	v.derr = nil
	return nil
}

// Size returns the vector's dimension (GrB_Vector_size).
func (v *Vector[T]) Size() (Index, error) {
	if err := v.check(); err != nil {
		return 0, err
	}
	if _, err := v.context(); err != nil {
		return 0, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.pending) > 0 {
		if err := v.materializeLocked(); err != nil {
			return 0, err
		}
	}
	return v.vec.N, nil
}

// Nvals returns the number of stored entries (GrB_Vector_nvals).
func (v *Vector[T]) Nvals() (Index, error) {
	if err := v.check(); err != nil {
		return 0, err
	}
	if _, err := v.context(); err != nil {
		return 0, err
	}
	s, err := v.snapshot()
	if err != nil {
		return 0, err
	}
	return s.NNZ(), nil
}

// Clear removes all stored entries, abandoning any deferred sequence and
// parked error (GrB_Vector_clear).
func (v *Vector[T]) Clear() error {
	if err := v.check(); err != nil {
		return err
	}
	if _, err := v.context(); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pending = nil
	v.tuples = nil
	v.derr = nil
	v.errmsg = ""
	v.vec = sparse.NewVec[T](v.vec.N)
	return nil
}

// Dup returns a deep copy (GrB_Vector_dup).
func (v *Vector[T]) Dup() (*Vector[T], error) {
	if err := v.check(); err != nil {
		return nil, err
	}
	ctx, err := v.context()
	if err != nil {
		return nil, err
	}
	s, err := v.snapshot()
	if err != nil {
		return nil, err
	}
	return &Vector[T]{init: true, ctx: ctx, vec: s}, nil
}

// Resize changes the vector's size (GrB_Vector_resize).
func (v *Vector[T]) Resize(size Index) error {
	if err := v.check(); err != nil {
		return err
	}
	ctx, err := v.context()
	if err != nil {
		return err
	}
	if size <= 0 {
		return errf(InvalidValue, "Resize: size must be positive")
	}
	old, err := v.snapshot()
	if err != nil {
		return err
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = (&obsv.Event{Op: "Vector.Resize", Kind: "kernel"}).
			A(old.N, 1, old.NNZ())
	}
	return v.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		return old.Resize(size), nil
	})
}

// Build populates an empty vector from coordinate lists (GrB_Vector_build).
// A nil dup makes duplicate indices an execution error (§IX).
func (v *Vector[T]) Build(I []Index, X []T, dup BinaryOp[T, T, T]) error {
	if err := v.check(); err != nil {
		return err
	}
	ctx, err := v.context()
	if err != nil {
		return err
	}
	if len(I) != len(X) {
		return errf(InvalidValue, "Build: index and value slices must have equal length")
	}
	cur, err := v.snapshot()
	if err != nil {
		return err
	}
	if cur.NNZ() != 0 {
		return errf(OutputNotEmpty, "Build: vector already contains entries")
	}
	n := cur.N
	for _, i := range I {
		if i < 0 || i >= n {
			return errf(InvalidIndex, "Build: index %d outside size %d", i, n)
		}
	}
	ci := append([]Index(nil), I...)
	cx := append([]T(nil), X...)
	var ev *obsv.Event
	if obsv.Active() {
		ev = (&obsv.Event{Op: "Vector.Build", Kind: "kernel"}).
			A(n, 1, len(ci))
	}
	return v.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		var d func(T, T) T
		if dup != nil {
			d = dup
		}
		nv, err := sparse.BuildVec(n, ci, cx, d)
		if err != nil {
			return nil, mapSparseErr(err, "Build")
		}
		return nv, nil
	})
}

// SetElement stores value x at index i (GrB_Vector_setElement).
func (v *Vector[T]) SetElement(x T, i Index) error {
	if err := v.check(); err != nil {
		return err
	}
	ctx, err := v.context()
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.derr != nil {
		return v.derr
	}
	if len(v.pending) > 0 {
		if err := v.materializeLocked(); err != nil {
			return err
		}
	}
	if i < 0 || i >= v.vec.N {
		return errf(InvalidIndex, "SetElement: index %d outside size %d", i, v.vec.N)
	}
	v.tuples = append(v.tuples, sparse.VTuple[T]{Idx: i, Val: x})
	if ctx.Mode() == Blocking {
		return v.materializeLocked()
	}
	return nil
}

// SetElementScalar stores the value held by a GrB_Scalar at index i — the
// Table II variant. An empty scalar removes the element.
func (v *Vector[T]) SetElementScalar(s *Scalar[T], i Index) error {
	if err := v.check(); err != nil {
		return err
	}
	if s == nil {
		return errf(NullPointer, "SetElementScalar: nil scalar")
	}
	x, ok, err := s.ExtractElement()
	if err != nil {
		return err
	}
	if !ok {
		return v.RemoveElement(i)
	}
	return v.SetElement(x, i)
}

// RemoveElement deletes the entry at index i if present
// (GrB_Vector_removeElement).
func (v *Vector[T]) RemoveElement(i Index) error {
	if err := v.check(); err != nil {
		return err
	}
	ctx, err := v.context()
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.derr != nil {
		return v.derr
	}
	if len(v.pending) > 0 {
		if err := v.materializeLocked(); err != nil {
			return err
		}
	}
	if i < 0 || i >= v.vec.N {
		return errf(InvalidIndex, "RemoveElement: index %d outside size %d", i, v.vec.N)
	}
	v.tuples = append(v.tuples, sparse.VTuple[T]{Idx: i, Del: true})
	if ctx.Mode() == Blocking {
		return v.materializeLocked()
	}
	return nil
}

// ExtractElement reads the entry at index i (GrB_Vector_extractElement);
// ok is false for a missing entry (GrB_NO_VALUE).
func (v *Vector[T]) ExtractElement(i Index) (val T, ok bool, err error) {
	var zero T
	if err := v.check(); err != nil {
		return zero, false, err
	}
	if _, err := v.context(); err != nil {
		return zero, false, err
	}
	s, err := v.snapshot()
	if err != nil {
		return zero, false, err
	}
	if i < 0 || i >= s.N {
		return zero, false, errf(InvalidIndex, "ExtractElement: index %d outside size %d", i, s.N)
	}
	x, ok := s.Get(i)
	return x, ok, nil
}

// ExtractElementScalar extracts the (possibly missing) entry at index i
// into a GrB_Scalar — the Table II variant; a missing entry yields an empty
// scalar (§VI).
func (v *Vector[T]) ExtractElementScalar(s *Scalar[T], i Index) error {
	if s == nil {
		return errf(NullPointer, "ExtractElementScalar: nil scalar")
	}
	if err := s.check(); err != nil {
		return err
	}
	x, ok, err := v.ExtractElement(i)
	if err != nil {
		return err
	}
	if !ok {
		return s.Clear()
	}
	return s.SetElement(x)
}

// ExtractTuples returns the indices and values of all stored entries in
// ascending index order (GrB_Vector_extractTuples).
func (v *Vector[T]) ExtractTuples() (I []Index, X []T, err error) {
	if err := v.check(); err != nil {
		return nil, nil, err
	}
	if _, err := v.context(); err != nil {
		return nil, nil, err
	}
	s, err := v.snapshot()
	if err != nil {
		return nil, nil, err
	}
	I, X = s.VecTuples(nil, nil)
	return I, X, nil
}

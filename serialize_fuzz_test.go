package grb

import (
	"math/rand"
	"testing"
)

// TestDeserializeNeverPanicsOnMutatedStreams is failure injection for the
// §VII-B deserializer: random single-byte corruptions of a valid stream
// must either fail with a grb error or produce a structurally valid object
// — never panic and never return an invalid matrix.
func TestDeserializeNeverPanicsOnMutatedStreams(t *testing.T) {
	setMode(t, Blocking)
	m := mustMatrix(t, 5, 7,
		[]Index{0, 1, 2, 3, 4}, []Index{6, 0, 3, 2, 5}, []float64{1, 2, 3, 4, 5})
	blob, err := m.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), blob...)
		// flip 1-3 random bytes
		for f := 0; f < 1+rng.Intn(3); f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated stream (trial %d): %v", trial, r)
				}
			}()
			back, err := MatrixDeserialize[float64](mut)
			if err == nil {
				// Accepted: must be internally consistent and readable.
				if _, err := back.Nvals(); err != nil {
					t.Fatalf("accepted stream yields broken object: %v", err)
				}
				if _, _, _, err := back.ExtractTuples(); err != nil {
					t.Fatalf("accepted stream yields unreadable object: %v", err)
				}
			}
		}()
	}
}

// TestVectorDeserializeNeverPanicsOnTruncation mirrors the matrix test for
// vectors with every truncation length.
func TestVectorDeserializeNeverPanicsOnTruncation(t *testing.T) {
	setMode(t, Blocking)
	v := mustVector(t, 9, []Index{0, 4, 8}, []int64{-1, 1 << 40, 7})
	blob, err := v.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(blob); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", cut, r)
				}
			}()
			back, err := VectorDeserialize[int64](blob[:cut])
			if cut < len(blob) && err == nil {
				// a strict prefix that still decodes must decode correctly
				if nv := ck1(back.Nvals()); nv != 3 {
					t.Fatalf("truncated stream accepted with wrong content")
				}
			}
		}()
	}
	// the full stream decodes exactly
	back, err := VectorDeserialize[int64](blob)
	if err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, back, []Index{0, 4, 8}, []int64{-1, 1 << 40, 7})
}

// Package mtx reads and writes Matrix Market exchange files (the standard
// non-opaque interchange format for sparse matrices), complementing the
// GraphBLAS 2.0 import/export API: external tools produce .mtx files, this
// package turns them into coordinate arrays, and grb.MatrixImport builds
// GraphBLAS objects from them.
//
// Supported: "matrix coordinate real|integer|pattern general|symmetric".
package mtx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Coord holds a matrix in coordinate form as read from a Matrix Market file.
type Coord struct {
	Rows, Cols int
	I, J       []int
	X          []float64
	Pattern    bool // the file had no values (pattern field); X is all 1s
	Symmetric  bool // the file stored only one triangle; both are present in I/J/X
}

// ErrFormat reports a malformed Matrix Market stream.
var ErrFormat = errors.New("mtx: malformed Matrix Market data")

// Read parses a Matrix Market stream. Symmetric files are expanded to both
// triangles (diagonal entries are not duplicated).
func Read(r io.Reader) (*Coord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrFormat)
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("%w: bad header %q", ErrFormat, sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("%w: only coordinate format supported, got %q", ErrFormat, header[2])
	}
	field := header[3]
	if field != "real" && field != "integer" && field != "pattern" {
		return nil, fmt.Errorf("%w: unsupported field %q", ErrFormat, field)
	}
	sym := header[4]
	if sym != "general" && sym != "symmetric" {
		return nil, fmt.Errorf("%w: unsupported symmetry %q", ErrFormat, sym)
	}
	// Skip comments, find size line.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("%w: missing size line", ErrFormat)
	}
	parts := strings.Fields(sizeLine)
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: bad size line %q", ErrFormat, sizeLine)
	}
	nr, err1 := strconv.Atoi(parts[0])
	nc, err2 := strconv.Atoi(parts[1])
	nnz, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || nr < 0 || nc < 0 || nnz < 0 {
		return nil, fmt.Errorf("%w: bad size line %q", ErrFormat, sizeLine)
	}
	out := &Coord{Rows: nr, Cols: nc, Pattern: field == "pattern", Symmetric: sym == "symmetric"}
	for k := 0; k < nnz; k++ {
		var line string
		for sc.Scan() {
			line = strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "%") {
				break
			}
			line = ""
		}
		if line == "" {
			return nil, fmt.Errorf("%w: expected %d entries, got %d", ErrFormat, nnz, k)
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("%w: bad entry line %q", ErrFormat, line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil || i < 1 || i > nr || j < 1 || j > nc {
			return nil, fmt.Errorf("%w: bad coordinates in %q", ErrFormat, line)
		}
		x := 1.0
		if field != "pattern" {
			x, err1 = strconv.ParseFloat(f[2], 64)
			if err1 != nil {
				return nil, fmt.Errorf("%w: bad value in %q", ErrFormat, line)
			}
		}
		out.I = append(out.I, i-1)
		out.J = append(out.J, j-1)
		out.X = append(out.X, x)
		if out.Symmetric && i != j {
			out.I = append(out.I, j-1)
			out.J = append(out.J, i-1)
			out.X = append(out.X, x)
		}
	}
	return out, nil
}

// Write emits a "matrix coordinate real general" Matrix Market stream.
func Write(w io.Writer, rows, cols int, I, J []int, X []float64) error {
	if len(I) != len(J) || len(I) != len(X) {
		return fmt.Errorf("mtx: unequal slice lengths")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", rows, cols, len(I))
	for k := range I {
		fmt.Fprintf(bw, "%d %d %g\n", I[k]+1, J[k]+1, X[k])
	}
	return bw.Flush()
}

// WritePattern emits a "matrix coordinate pattern general" stream (indices
// only).
func WritePattern(w io.Writer, rows, cols int, I, J []int) error {
	if len(I) != len(J) {
		return fmt.Errorf("mtx: unequal slice lengths")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern general")
	fmt.Fprintf(bw, "%d %d %d\n", rows, cols, len(I))
	for k := range I {
		fmt.Fprintf(bw, "%d %d\n", I[k]+1, J[k]+1)
	}
	return bw.Flush()
}

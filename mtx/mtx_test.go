package mtx

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	I := []int{0, 1, 2}
	J := []int{2, 0, 1}
	X := []float64{1.5, -2, 3e10}
	if err := Write(&buf, 3, 4, I, J, X); err != nil {
		t.Fatal(err)
	}
	c, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 3 || c.Cols != 4 || len(c.I) != 3 {
		t.Fatalf("shape %dx%d nnz %d", c.Rows, c.Cols, len(c.I))
	}
	for k := range I {
		if c.I[k] != I[k] || c.J[k] != J[k] || c.X[k] != X[k] {
			t.Fatalf("entry %d mismatch", k)
		}
	}
	if c.Pattern || c.Symmetric {
		t.Fatal("flags wrong")
	}
}

func TestPatternRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePattern(&buf, 2, 2, []int{0, 1}, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	c, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Pattern || len(c.X) != 2 || c.X[0] != 1 {
		t.Fatalf("pattern read: %+v", c)
	}
}

func TestSymmetricExpansion(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
1 1 5.0
2 1 1.5
3 2 2.5
`
	c, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// diagonal not duplicated; off-diagonals mirrored: 1 + 2*2 = 5 entries
	if len(c.I) != 5 {
		t.Fatalf("expanded nnz = %d, want 5", len(c.I))
	}
	if !c.Symmetric {
		t.Fatal("symmetric flag lost")
	}
	found := false
	for k := range c.I {
		if c.I[k] == 0 && c.J[k] == 1 && c.X[k] == 1.5 {
			found = true
		}
	}
	if !found {
		t.Fatal("mirrored entry missing")
	}
}

func TestIntegerField(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n"
	c, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.X[0] != 7 {
		t.Fatalf("integer value %v", c.X[0])
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                             // empty
		"%%Wrong header\n2 2 1\n1 1 1", // bad banner
		"%%MatrixMarket matrix array real general\n2 2\n1\n1\n1\n1",          // array format
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0",   // complex
		"%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 1\n1 1 1", // skew
		"%%MatrixMarket matrix coordinate real general\n",                    // no size
		"%%MatrixMarket matrix coordinate real general\n2 2\n",               // short size
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",      // missing entry
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",      // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",    // bad value
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",          // short entry
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: err = %v, want ErrFormat", i, err)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, 2, 2, []int{0}, []int{0, 1}, []float64{1}); err == nil {
		t.Fatal("unequal slices accepted")
	}
	if err := WritePattern(&buf, 2, 2, []int{0}, []int{0, 1}); err == nil {
		t.Fatal("unequal slices accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% comment one

% comment two
2 2 2

1 1 1.0
% interleaved comment
2 2 2.0
`
	c, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.I) != 2 || c.X[1] != 2 {
		t.Fatalf("parsed %d entries", len(c.I))
	}
}

package grb

// IndexUnaryOp is the GraphBLAS 2.0 index unary operator (§VIII-A of the
// paper): f(value, row, col, s) where s is a caller-supplied scalar threaded
// through apply and select. For vector operations col is always 0 — the C
// spec passes a one-element index array there; the Go binding fixes the
// arity and zeroes the unused index.
//
// Operators returning bool drive the select operation (§VIII-C); operators
// returning other domains drive the index variants of apply (§VIII-B).
type IndexUnaryOp[Din, Ds, Dout any] func(v Din, row, col Index, s Ds) Dout

// NewIndexUnaryOp wraps a user function as an index unary operator
// (GrB_IndexUnaryOp_new). In Go the function value itself already carries
// the domains, so this constructor only validates non-nilness; it exists to
// mirror the C API's constructor (§VIII-A).
func NewIndexUnaryOp[Din, Ds, Dout any](f func(v Din, row, col Index, s Ds) Dout) (IndexUnaryOp[Din, Ds, Dout], error) {
	if f == nil {
		return nil, errf(NullPointer, "NewIndexUnaryOp: nil function")
	}
	return IndexUnaryOp[Din, Ds, Dout](f), nil
}

// ---------------------------------------------------------------------------
// Predefined index unary operators — Table IV of the paper.
//
// "Replace" operators (for apply): RowIndex, ColIndex, DiagIndex.
// "Keep" operators (for select): TriL, TriU, Diag, Offdiag, RowLE, RowGT,
// ColLE, ColGT, and the Value* comparison family.
// ---------------------------------------------------------------------------

// RowIndex replaces each stored element with its row index plus s
// (GrB_ROWINDEX). Usable on vectors and matrices.
func RowIndex[D any](_ D, row, _ Index, s int) int { return row + s }

// ColIndex replaces each stored element with its column index plus s
// (GrB_COLINDEX). Matrices only — on vectors the column index is always 0.
func ColIndex[D any](_ D, _, col Index, s int) int { return col + s }

// DiagIndex replaces each stored element with its diagonal index (col - row)
// plus s (GrB_DIAGINDEX). Matrices only.
func DiagIndex[D any](_ D, row, col Index, s int) int { return col - row + s }

// TriL keeps elements on or below diagonal s: col <= row + s (GrB_TRIL).
func TriL[D any](_ D, row, col Index, s int) bool { return col <= row+s }

// TriU keeps elements on or above diagonal s: col >= row + s (GrB_TRIU).
func TriU[D any](_ D, row, col Index, s int) bool { return col >= row+s }

// Diag keeps elements exactly on diagonal s (GrB_DIAG).
func Diag[D any](_ D, row, col Index, s int) bool { return col-row == s }

// Offdiag keeps elements off diagonal s (GrB_OFFDIAG).
func Offdiag[D any](_ D, row, col Index, s int) bool { return col-row != s }

// RowLE keeps elements in rows <= s (GrB_ROWLE).
func RowLE[D any](_ D, row, _ Index, s int) bool { return row <= s }

// RowGT keeps elements in rows > s (GrB_ROWGT).
func RowGT[D any](_ D, row, _ Index, s int) bool { return row > s }

// ColLE keeps elements in columns <= s (GrB_COLLE). Matrices only.
func ColLE[D any](_ D, _, col Index, s int) bool { return col <= s }

// ColGT keeps elements in columns > s (GrB_COLGT). Matrices only.
func ColGT[D any](_ D, _, col Index, s int) bool { return col > s }

// ValueEQ keeps elements whose stored value equals s (GrB_VALUEEQ).
func ValueEQ[D comparable](v D, _, _ Index, s D) bool { return v == s }

// ValueNE keeps elements whose stored value differs from s (GrB_VALUENE).
func ValueNE[D comparable](v D, _, _ Index, s D) bool { return v != s }

// ValueLT keeps elements with value < s (GrB_VALUELT).
func ValueLT[D Ordered](v D, _, _ Index, s D) bool { return v < s }

// ValueLE keeps elements with value <= s (GrB_VALUELE).
func ValueLE[D Ordered](v D, _, _ Index, s D) bool { return v <= s }

// ValueGT keeps elements with value > s (GrB_VALUEGT).
func ValueGT[D Ordered](v D, _, _ Index, s D) bool { return v > s }

// ValueGE keeps elements with value >= s (GrB_VALUEGE).
func ValueGE[D Ordered](v D, _, _ Index, s D) bool { return v >= s }

package grb

import "testing"

func TestMatrixExtractBasic(t *testing.T) {
	setMode(t, Blocking)
	// 3x4: value = 10*i + j at every position
	var I, J []Index
	var X []int
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			I = append(I, i)
			J = append(J, j)
			X = append(X, 10*i+j)
		}
	}
	a := mustMatrix(t, 3, 4, I, J, X)

	// submatrix with reordered and repeated indices
	c := ck1(NewMatrix[int](2, 3))
	if err := MatrixExtract(c, nil, nil, a, []Index{2, 0}, []Index{3, 1, 3}, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c,
		[]Index{0, 0, 0, 1, 1, 1},
		[]Index{0, 1, 2, 0, 1, 2},
		[]int{23, 21, 23, 3, 1, 3})

	// All rows, selected cols
	c2 := ck1(NewMatrix[int](3, 2))
	if err := MatrixExtract(c2, nil, nil, a, All, []Index{0, 2}, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c2,
		[]Index{0, 0, 1, 1, 2, 2},
		[]Index{0, 1, 0, 1, 0, 1},
		[]int{0, 2, 10, 12, 20, 22})

	// with transpose: extract from Aᵀ (4x3)
	c3 := ck1(NewMatrix[int](2, 3))
	if err := MatrixExtract(c3, nil, nil, a, []Index{1, 3}, All, DescT0); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c3,
		[]Index{0, 0, 0, 1, 1, 1},
		[]Index{0, 1, 2, 0, 1, 2},
		[]int{1, 11, 21, 3, 13, 23})

	// errors
	wantCode(t, MatrixExtract(c, nil, nil, a, []Index{5}, All, nil), InvalidIndex)
	wantCode(t, MatrixExtract(c, nil, nil, a, []Index{0}, []Index{9}, nil), InvalidIndex)
	wantCode(t, MatrixExtract(c, nil, nil, a, []Index{0}, []Index{0}, nil), DimensionMismatch)
}

func TestVectorExtractAndColExtract(t *testing.T) {
	setMode(t, Blocking)
	u := mustVector(t, 5, []Index{0, 2, 4}, []int{1, 3, 5})
	w := ck1(NewVector[int](3))
	if err := VectorExtract(w, nil, nil, u, []Index{4, 1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{0, 2}, []int{5, 3})
	wantCode(t, VectorExtract(w, nil, nil, u, []Index{7}, nil), InvalidIndex)
	wantCode(t, VectorExtract(w, nil, nil, u, []Index{0, 1}, nil), DimensionMismatch)

	a := mustMatrix(t, 3, 3,
		[]Index{0, 1, 2, 2}, []Index{1, 1, 1, 2}, []int{5, 6, 7, 8})
	col := ck1(NewVector[int](3))
	if err := ColExtract(col, nil, nil, a, All, 1, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, col, []Index{0, 1, 2}, []int{5, 6, 7})
	// row extract via transpose flag
	row := ck1(NewVector[int](3))
	if err := ColExtract(row, nil, nil, a, All, 2, DescT0); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, row, []Index{1, 2}, []int{7, 8})
	// gathered with index list
	g := ck1(NewVector[int](2))
	if err := ColExtract(g, nil, nil, a, []Index{2, 0}, 1, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, g, []Index{0, 1}, []int{7, 5})
	wantCode(t, ColExtract(col, nil, nil, a, All, 5, nil), InvalidIndex)
}

func TestMatrixAssignSemantics(t *testing.T) {
	setMode(t, Blocking)
	// C dense 3x3 with c(i,j) = 100 + 10i + j
	var I, J []Index
	var X []int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			I = append(I, i)
			J = append(J, j)
			X = append(X, 100+10*i+j)
		}
	}
	c := mustMatrix(t, 3, 3, I, J, X)
	// A 2x2 with only (0,0)=1 and (1,1)=2
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{1, 2})

	// pure assignment into rows {0,2} cols {0,2}: region entries without a
	// source counterpart are DELETED.
	c1 := ck1(c.Dup())
	if err := MatrixAssign(c1, nil, nil, a, []Index{0, 2}, []Index{0, 2}, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c1,
		[]Index{0, 0, 1, 1, 1, 2, 2},
		[]Index{0, 1, 0, 1, 2, 1, 2},
		[]int{1, 101, 110, 111, 112, 121, 2})

	// accumulated assignment: region C entries survive; co-located combine
	c2 := ck1(c.Dup())
	if err := MatrixAssign(c2, nil, nil, a, []Index{0, 2}, []Index{0, 2}, nil); err != nil {
		t.Fatal(err)
	}
	c3 := ck1(c.Dup())
	if err := MatrixAssign(c3, nil, Plus[int], a, []Index{0, 2}, []Index{0, 2}, nil); err != nil {
		t.Fatal(err)
	}
	// (0,0): 100+1; (0,2): kept 102; (2,0): kept 120; (2,2): 122+2
	if v, _ := ck2(c3.ExtractElement(0, 0)); v != 101 {
		t.Fatalf("accum (0,0)=%d", v)
	}
	if v, ok := ck2(c3.ExtractElement(0, 2)); !ok || v != 102 {
		t.Fatalf("accum (0,2)=%d,%v", v, ok)
	}
	if v, _ := ck2(c3.ExtractElement(2, 2)); v != 124 {
		t.Fatalf("accum (2,2)=%d", v)
	}
	nv := ck1(c3.Nvals())
	if nv != 9 {
		t.Fatalf("accum nvals=%d, want 9", nv)
	}

	// dimension / index errors
	wantCode(t, MatrixAssign(c1, nil, nil, a, []Index{0}, []Index{0, 2}, nil), DimensionMismatch)
	wantCode(t, MatrixAssign(c1, nil, nil, a, []Index{0, 5}, []Index{0, 2}, nil), InvalidIndex)
}

func TestMatrixAssignScalarAndMask(t *testing.T) {
	setMode(t, Blocking)
	c := mustMatrix(t, 2, 3, []Index{0, 1}, []Index{0, 2}, []int{5, 6})
	// fill a row with 9
	if err := MatrixAssignScalar(c, nil, nil, 9, []Index{0}, All, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c,
		[]Index{0, 0, 0, 1}, []Index{0, 1, 2, 2}, []int{9, 9, 9, 6})
	// accumulate over the row
	if err := MatrixAssignScalar(c, nil, Plus[int], 1, []Index{0}, All, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c,
		[]Index{0, 0, 0, 1}, []Index{0, 1, 2, 2}, []int{10, 10, 10, 6})
	// masked scalar assign: the mask spans C
	mask := boolMatrix(t,
		[][]bool{{true, true, false}, {true, true, true}},
		[][]bool{{true, true, false}, {false, false, true}})
	if err := MatrixAssignScalar(c, mask, nil, 7, All, All, nil); err != nil {
		t.Fatal(err)
	}
	// mask true at (0,0),(0,1),(1,2): those get 7; others keep old
	matrixEquals(t, c,
		[]Index{0, 0, 0, 1}, []Index{0, 1, 2, 2}, []int{7, 7, 10, 7})
}

// TestMatrixAssignScalarObjEmpty covers the Table II scalar-object assign
// with an empty scalar: region entries are deleted when accum is nil and
// kept when accum is present.
func TestMatrixAssignScalarObjEmpty(t *testing.T) {
	setMode(t, Blocking)
	full := ck1(ScalarOf(3))
	empty := ck1(NewScalar[int]())

	c := mustMatrix(t, 2, 2, []Index{0, 0, 1}, []Index{0, 1, 1}, []int{1, 2, 4})
	if err := MatrixAssignScalarObj(c, nil, nil, full, []Index{0}, All, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 0, 1}, []Index{0, 1, 1}, []int{3, 3, 4})

	// empty + nil accum: row 0 entries deleted
	if err := MatrixAssignScalarObj(c, nil, nil, empty, []Index{0}, All, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{1}, []Index{1}, []int{4})

	// empty + accum: unchanged
	if err := MatrixAssignScalarObj(c, nil, Plus[int], empty, All, All, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{1}, []Index{1}, []int{4})
}

func TestVectorAssignSemantics(t *testing.T) {
	setMode(t, Blocking)
	w := mustVector(t, 5, []Index{0, 1, 2, 3, 4}, []int{10, 11, 12, 13, 14})
	u := mustVector(t, 2, []Index{0}, []int{99})
	// pure assign into {1,3}: w(1)=99 (from u(0)), w(3) deleted (u(1) absent)
	w1 := ck1(w.Dup())
	if err := VectorAssign(w1, nil, nil, u, []Index{1, 3}, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w1, []Index{0, 1, 2, 4}, []int{10, 99, 12, 14})
	// accum assign: w(3) kept, w(1) = 11+99
	w2 := ck1(w.Dup())
	if err := VectorAssign(w2, nil, Plus[int], u, []Index{1, 3}, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w2, []Index{0, 1, 2, 3, 4}, []int{10, 110, 12, 13, 14})
	// scalar assign
	w3 := ck1(w.Dup())
	if err := VectorAssignScalar(w3, nil, nil, 0, []Index{2, 4}, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w3, []Index{0, 1, 2, 3, 4}, []int{10, 11, 0, 13, 0})
	// scalar obj, empty, nil accum: delete region
	empty := ck1(NewScalar[int]())
	w4 := ck1(w.Dup())
	if err := VectorAssignScalarObj(w4, nil, nil, empty, []Index{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w4, []Index{2, 3, 4}, []int{12, 13, 14})
	// scalar obj, empty, accum: unchanged
	w5 := ck1(w.Dup())
	if err := VectorAssignScalarObj(w5, nil, Plus[int], empty, All, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w5, []Index{0, 1, 2, 3, 4}, []int{10, 11, 12, 13, 14})
	// errors
	wantCode(t, VectorAssign(w1, nil, nil, u, []Index{1}, nil), DimensionMismatch)
	wantCode(t, VectorAssign(w1, nil, nil, u, []Index{1, 9}, nil), InvalidIndex)
	wantCode(t, VectorAssignScalar(w1, nil, nil, 1, []Index{9}, nil), InvalidIndex)
}

// TestAssignMaskReplaceOutsideRegion checks the GrB_assign (non-subassign)
// property that the mask covers all of C: with Replace, entries outside the
// assigned region can be deleted.
func TestAssignMaskReplaceOutsideRegion(t *testing.T) {
	setMode(t, Blocking)
	w := mustVector(t, 4, []Index{0, 1, 2, 3}, []int{1, 2, 3, 4})
	mask := mustVector(t, 4, []Index{0, 1}, []bool{true, true})
	// assign 9 into region {1}; mask admits only {0,1}; replace deletes the
	// rest — including w(2), w(3) which are outside the region.
	if err := VectorAssignScalar(w, mask, nil, 9, []Index{1}, DescR); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{0, 1}, []int{1, 9})
}

func TestTransposeOperation(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 3, []Index{0, 1, 1}, []Index{2, 0, 1}, []int{1, 2, 3})
	c := ck1(NewMatrix[int](3, 2))
	if err := Transpose(c, nil, nil, a, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1, 2}, []Index{1, 1, 0}, []int{2, 3, 1})
	// transpose + T0 = copy
	c2 := ck1(NewMatrix[int](2, 3))
	if err := Transpose(c2, nil, nil, a, DescT0); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c2, []Index{0, 1, 1}, []Index{2, 0, 1}, []int{1, 2, 3})
	// accumulate into existing
	c3 := mustMatrix(t, 3, 2, []Index{0}, []Index{1}, []int{100})
	if err := Transpose(c3, nil, Plus[int], a, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c3, []Index{0, 1, 2}, []Index{1, 1, 0}, []int{102, 3, 1})
	wantCode(t, Transpose(c3, nil, nil, a, DescT0), DimensionMismatch)
}

func TestKroneckerOperation(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{1, 0}, []int{2, 3})
	b := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{5, 7})
	c := ck1(NewMatrix[int](4, 4))
	if err := Kronecker(c, nil, nil, Times[int], a, b, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c,
		[]Index{0, 1, 2, 3}, []Index{2, 3, 0, 1}, []int{10, 14, 15, 21})
	bad := ck1(NewMatrix[int](3, 3))
	wantCode(t, Kronecker(bad, nil, nil, Times[int], a, b, nil), DimensionMismatch)
	wantCode(t, Kronecker(c, nil, nil, nil, a, b, nil), NullPointer)
}

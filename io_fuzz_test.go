package grb

import (
	"math"
	"math/rand"
	"testing"
)

// These tests are the import-path counterpart of serialize_fuzz_test.go:
// MatrixImport and VectorImport take attacker-shaped index arrays straight
// from the caller, so every malformed combination must be rejected with a
// grb error (or accepted as a structurally valid object) — never a panic.

// mutateInts returns a copy of src with 1-3 entries overwritten by
// adversarial values: negatives, off-by-ones, huge magnitudes, and overflow
// bait near MaxInt.
func mutateInts(rng *rand.Rand, src []Index) []Index {
	out := append([]Index(nil), src...)
	if len(out) == 0 {
		return out
	}
	evil := []Index{-1, -1 << 40, 0, 1, 7, 1 << 30, math.MaxInt, math.MaxInt - 1, math.MinInt}
	for f := 0; f < 1+rng.Intn(3); f++ {
		out[rng.Intn(len(out))] = evil[rng.Intn(len(evil))]
	}
	return out
}

// checkImported validates that an accepted import produced a readable,
// internally consistent matrix.
func checkImported(t *testing.T, trial int, m *Matrix[float64]) {
	t.Helper()
	if _, err := m.Nvals(); err != nil {
		t.Fatalf("trial %d: accepted import yields broken object: %v", trial, err)
	}
	if _, _, _, err := m.ExtractTuples(); err != nil {
		t.Fatalf("trial %d: accepted import yields unreadable object: %v", trial, err)
	}
}

// TestMatrixImportNeverPanicsOnMutatedArrays mutates valid CSR/CSC/COO
// import arrays and checks the never-panic contract on each.
func TestMatrixImportNeverPanicsOnMutatedArrays(t *testing.T) {
	setMode(t, Blocking)
	// A valid 4x6 matrix in all three sparse formats.
	indptr := []Index{0, 2, 2, 5, 6}
	indices := []Index{1, 4, 0, 3, 5, 2}
	values := []float64{1, 2, 3, 4, 5, 6}
	cooRows := []Index{0, 0, 2, 2, 2, 3}
	cooCols := []Index{1, 4, 0, 3, 5, 2}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4000; trial++ {
		format := []Format{FormatCSR, FormatCSC, FormatCOO}[trial%3]
		var p, i []Index
		if format == FormatCOO {
			p, i = mutateInts(rng, cooCols), mutateInts(rng, cooRows)
		} else {
			p, i = mutateInts(rng, indptr), mutateInts(rng, indices)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated %v import (trial %d, indptr=%v indices=%v): %v",
						format, trial, p, i, r)
				}
			}()
			m, err := MatrixImport[float64](4, 6, p, i, values, format)
			if err == nil {
				checkImported(t, trial, m)
			}
		}()
	}
}

// TestMatrixImportIndptrOverrun pins the regression the validation-order fix
// addressed: an indptr that fails nondecreasing only after an earlier bound
// already exceeds nnz must be rejected, not overrun the indices array.
func TestMatrixImportIndptrOverrun(t *testing.T) {
	setMode(t, Blocking)
	_, err := MatrixImport[float64](2, 8,
		[]Index{0, 5, 3}, []Index{1, 2, 3}, []float64{1, 2, 3}, FormatCSR)
	if Code(err) != InvalidValue {
		t.Fatalf("overrunning indptr accepted: err = %v", err)
	}
}

// TestImportOverflowShapes checks the integer-overflow shape guards: dense
// extents that wrap the int range must fail cleanly with OutOfMemory.
func TestImportOverflowShapes(t *testing.T) {
	setMode(t, Blocking)
	big := Index(math.MaxInt/2 + 1)
	if _, err := MatrixImport[float64](big, 4, nil, nil, nil, FormatDenseRow); Code(err) != OutOfMemory {
		t.Fatalf("dense import with overflowing shape: err = %v", err)
	}
	m := mustMatrix(t, 3, 3, []Index{0}, []Index{0}, []float64{1})
	if err := m.Resize(big, 4); Code(err) != OutOfMemory {
		t.Fatalf("Resize to overflowing shape: err = %v", err)
	}
	if err := m.Resize(math.MaxInt, 1); Code(err) != OutOfMemory {
		t.Fatalf("Resize to MaxInt rows (Ptr length overflow): err = %v", err)
	}
	// The guarded paths must not disturb valid use.
	if err := m.Resize(5, 5); err != nil {
		t.Fatalf("valid Resize failed: %v", err)
	}
}

// TestVectorImportNeverPanicsOnMutatedArrays is the vector analogue.
func TestVectorImportNeverPanicsOnMutatedArrays(t *testing.T) {
	setMode(t, Blocking)
	indices := []Index{0, 3, 4, 8}
	values := []int64{1, 2, 3, 4}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		i := mutateInts(rng, indices)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated vector import (trial %d, indices=%v): %v", trial, i, r)
				}
			}()
			v, err := VectorImport[int64](9, i, values, FormatSparseVector)
			if err == nil {
				if _, err := v.Nvals(); err != nil {
					t.Fatalf("trial %d: accepted import yields broken vector: %v", trial, err)
				}
			}
		}()
	}
}

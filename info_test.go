package grb

import (
	"errors"
	"testing"
)

// TestInfoPinnedValues checks the §IX requirement that enumeration members
// carry the exact values the specification assigns, so separately compiled
// programs agree.
func TestInfoPinnedValues(t *testing.T) {
	pinned := map[Info]int{
		Success:             0,
		NoValue:             1,
		UninitializedObject: -1,
		NullPointer:         -2,
		InvalidValue:        -3,
		InvalidIndex:        -4,
		DomainMismatch:      -5,
		DimensionMismatch:   -6,
		OutputNotEmpty:      -7,
		NotImplemented:      -8,
		Panic:               -101,
		OutOfMemory:         -102,
		InsufficientSpace:   -103,
		InvalidObject:       -104,
		IndexOutOfBounds:    -105,
		EmptyObject:         -106,
		Canceled:            -107,
	}
	for code, want := range pinned {
		if int(code) != want {
			t.Errorf("%v = %d, want %d", code, int(code), want)
		}
	}
}

func TestInfoClassification(t *testing.T) {
	apiErrors := []Info{UninitializedObject, NullPointer, InvalidValue, InvalidIndex,
		DomainMismatch, DimensionMismatch, OutputNotEmpty, NotImplemented}
	execErrors := []Info{Panic, OutOfMemory, InsufficientSpace, InvalidObject,
		IndexOutOfBounds, EmptyObject, Canceled}
	for _, c := range apiErrors {
		if !c.IsAPIError() || c.IsExecutionError() {
			t.Errorf("%v misclassified (api=%v exec=%v)", c, c.IsAPIError(), c.IsExecutionError())
		}
	}
	for _, c := range execErrors {
		if c.IsAPIError() || !c.IsExecutionError() {
			t.Errorf("%v misclassified (api=%v exec=%v)", c, c.IsAPIError(), c.IsExecutionError())
		}
	}
	for _, c := range []Info{Success, NoValue} {
		if c.IsAPIError() || c.IsExecutionError() {
			t.Errorf("%v misclassified as error", c)
		}
	}
}

func TestInfoString(t *testing.T) {
	if Success.String() != "GrB_SUCCESS" {
		t.Errorf("Success.String() = %q", Success.String())
	}
	if IndexOutOfBounds.String() != "GrB_INDEX_OUT_OF_BOUNDS" {
		t.Errorf("IndexOutOfBounds.String() = %q", IndexOutOfBounds.String())
	}
	if Info(999).String() != "GrB_Info(999)" {
		t.Errorf("unknown code String() = %q", Info(999).String())
	}
}

func TestErrorAndCode(t *testing.T) {
	e := errf(DimensionMismatch, "a %d", 3)
	if e.Error() != "GrB_DIMENSION_MISMATCH: a 3" {
		t.Errorf("Error() = %q", e.Error())
	}
	if Code(e) != DimensionMismatch {
		t.Errorf("Code = %v", Code(e))
	}
	if Code(nil) != Success {
		t.Errorf("Code(nil) = %v", Code(nil))
	}
	if Code(errors.New("other")) != Panic {
		t.Errorf("Code(foreign) = %v", Code(errors.New("other")))
	}
	bare := &Error{Info: OutOfMemory}
	if bare.Error() != "GrB_OUT_OF_MEMORY" {
		t.Errorf("bare Error() = %q", bare.Error())
	}
}

package grb

import (
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// MatrixAssign computes C⟨M⟩(rows, cols) = C(rows, cols) ⊙ A: assignment of
// A into the region of C addressed by the index lists (GrB_assign). The mask
// spans all of C (GrB_assign, not the subassign extension): with Replace,
// entries of C anywhere the mask is false are deleted. nil index slices mean
// all indices; A must be len(rows) × len(cols).
func MatrixAssign[T any](c *Matrix[T], mask *Matrix[bool], accum BinaryOp[T, T, T],
	a *Matrix[T], rows, cols []Index, desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{c.ctx, a.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	nr, nc := cOld.Rows, cOld.Cols
	if rows != nil {
		nr = len(rows)
		for _, r := range rows {
			if r < 0 || r >= cOld.Rows {
				return errf(InvalidIndex, "MatrixAssign: row index %d outside %d rows", r, cOld.Rows)
			}
		}
	}
	if cols != nil {
		nc = len(cols)
		for _, cc := range cols {
			if cc < 0 || cc >= cOld.Cols {
				return errf(InvalidIndex, "MatrixAssign: column index %d outside %d columns", cc, cOld.Cols)
			}
		}
	}
	if ar != nr || ac != nc {
		return errf(DimensionMismatch, "MatrixAssign: source is %dx%d but region is %dx%d", ar, ac, nr, nc)
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	ri := append([]Index(nil), rows...)
	cj := append([]Index(nil), cols...)
	if rows == nil {
		ri = nil
	}
	if cols == nil {
		cj = nil
	}
	threads := ctx.threadsFor(cOld.NNZ() + acsr.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("MatrixAssign").WithThreads(threads).
			A(cOld.Rows, cOld.Cols, cOld.NNZ()).B(acsr.Rows, acsr.Cols, acsr.NNZ())
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		A := maybeTranspose(acsr, d.Transpose0)
		z, err := sparse.AssignM(cOld, A, ri, cj, accum)
		if err != nil {
			return nil, mapSparseErr(err, "MatrixAssign")
		}
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// MatrixAssignScalar computes C⟨M⟩(rows, cols) = C(rows, cols) ⊙ val:
// every position in the region receives the scalar value
// (GrB_Matrix_assign with a scalar source, Table II's assign family).
func MatrixAssignScalar[T any](c *Matrix[T], mask *Matrix[bool], accum BinaryOp[T, T, T],
	val T, rows, cols []Index, desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{c.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	if err := validateRegion(rows, cols, cOld.Rows, cOld.Cols, "MatrixAssignScalar"); err != nil {
		return err
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	ri := append([]Index(nil), rows...)
	cj := append([]Index(nil), cols...)
	if rows == nil {
		ri = nil
	}
	if cols == nil {
		cj = nil
	}
	threads := ctx.threadsFor(cOld.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("MatrixAssignScalar").WithThreads(threads).
			A(cOld.Rows, cOld.Cols, cOld.NNZ())
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		z, err := sparse.AssignScalarM(cOld, val, ri, cj, accum)
		if err != nil {
			return nil, mapSparseErr(err, "MatrixAssignScalar")
		}
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// MatrixAssignScalarObj is the Table II variant of MatrixAssignScalar whose
// source is a GrB_Scalar: GrB_assign(C, M, accum, s, I, J, desc). When the
// scalar is empty, the region's existing entries are deleted if accum is nil
// and left unchanged otherwise — assigning "nothing" everywhere.
func MatrixAssignScalarObj[T any](c *Matrix[T], mask *Matrix[bool], accum BinaryOp[T, T, T],
	s *Scalar[T], rows, cols []Index, desc *Descriptor) error {
	if s == nil {
		return errf(NullPointer, "MatrixAssignScalarObj: nil scalar")
	}
	v, ok, err := s.ExtractElement()
	if err != nil {
		return err
	}
	if ok {
		return MatrixAssignScalar(c, mask, accum, v, rows, cols, desc)
	}
	// Empty scalar: assign an all-empty source over the region.
	return assignEmptyRegion(c, mask, accum, rows, cols, desc)
}

// assignEmptyRegion implements assignment of an entirely empty source.
func assignEmptyRegion[T any](c *Matrix[T], mask *Matrix[bool], accum BinaryOp[T, T, T],
	rows, cols []Index, desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{c.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	if err := validateRegion(rows, cols, cOld.Rows, cOld.Cols, "MatrixAssignScalarObj"); err != nil {
		return err
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	nr, nc := cOld.Rows, cOld.Cols
	if rows != nil {
		nr = len(rows)
	}
	if cols != nil {
		nc = len(cols)
	}
	ri := append([]Index(nil), rows...)
	cj := append([]Index(nil), cols...)
	if rows == nil {
		ri = nil
	}
	if cols == nil {
		cj = nil
	}
	threads := ctx.threadsFor(cOld.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("MatrixAssignScalarObj").WithThreads(threads).
			A(cOld.Rows, cOld.Cols, cOld.NNZ())
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		empty := sparse.NewCSR[T](nr, nc)
		z, err := sparse.AssignM(cOld, empty, ri, cj, accum)
		if err != nil {
			return nil, mapSparseErr(err, "MatrixAssignScalarObj")
		}
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// validateRegion checks assign index lists against the output shape.
func validateRegion(rows, cols []Index, nr, nc int, op string) error {
	for _, r := range rows {
		if r < 0 || r >= nr {
			return errf(InvalidIndex, "%s: row index %d outside %d rows", op, r, nr)
		}
	}
	for _, c := range cols {
		if c < 0 || c >= nc {
			return errf(InvalidIndex, "%s: column index %d outside %d columns", op, c, nc)
		}
	}
	return nil
}

// VectorAssign computes w⟨m⟩(idx) = w(idx) ⊙ u: assignment of u into the
// region of w addressed by idx (GrB_assign on vectors). u must have size
// len(idx); nil means all of w.
func VectorAssign[T any](w *Vector[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	u *Vector[T], idx []Index, desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{w.ctx, u.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	n := wOld.N
	if idx != nil {
		n = len(idx)
		for _, i := range idx {
			if i < 0 || i >= wOld.N {
				return errf(InvalidIndex, "VectorAssign: index %d outside size %d", i, wOld.N)
			}
		}
	}
	if uvec.N != n {
		return errf(DimensionMismatch, "VectorAssign: source has size %d but region has size %d", uvec.N, n)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	ci := append([]Index(nil), idx...)
	if idx == nil {
		ci = nil
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("VectorAssign").
			A(wOld.N, 1, wOld.NNZ()).B(uvec.N, 1, uvec.NNZ())
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		z, err := sparse.AssignV(wOld, uvec, ci, accum)
		if err != nil {
			return nil, mapSparseErr(err, "VectorAssign")
		}
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

// VectorAssignScalar computes w⟨m⟩(idx) = w(idx) ⊙ val: every position in
// idx receives the scalar value (GrB_Vector_assign with a scalar source).
func VectorAssignScalar[T any](w *Vector[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	val T, idx []Index, desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{w.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	for _, i := range idx {
		if i < 0 || i >= wOld.N {
			return errf(InvalidIndex, "VectorAssignScalar: index %d outside size %d", i, wOld.N)
		}
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	ci := append([]Index(nil), idx...)
	if idx == nil {
		ci = nil
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("VectorAssignScalar").A(wOld.N, 1, wOld.NNZ())
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		z, err := sparse.AssignScalarV(wOld, val, ci, accum)
		if err != nil {
			return nil, mapSparseErr(err, "VectorAssignScalar")
		}
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

// VectorAssignScalarObj is the Table II variant of VectorAssignScalar whose
// source is a GrB_Scalar; an empty scalar deletes the region's entries when
// accum is nil (see MatrixAssignScalarObj).
func VectorAssignScalarObj[T any](w *Vector[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	s *Scalar[T], idx []Index, desc *Descriptor) error {
	if s == nil {
		return errf(NullPointer, "VectorAssignScalarObj: nil scalar")
	}
	v, ok, err := s.ExtractElement()
	if err != nil {
		return err
	}
	if ok {
		return VectorAssignScalar(w, mask, accum, v, idx, desc)
	}
	if err := w.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{w.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	n := wOld.N
	if idx != nil {
		n = len(idx)
		for _, i := range idx {
			if i < 0 || i >= wOld.N {
				return errf(InvalidIndex, "VectorAssignScalarObj: index %d outside size %d", i, wOld.N)
			}
		}
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	ci := append([]Index(nil), idx...)
	if idx == nil {
		ci = nil
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("VectorAssignScalarObj").A(wOld.N, 1, wOld.NNZ())
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		empty := sparse.NewVec[T](n)
		z, err := sparse.AssignV(wOld, empty, ci, accum)
		if err != nil {
			return nil, mapSparseErr(err, "VectorAssignScalarObj")
		}
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

package grb

import (
	"sort"

	"github.com/grblas/grb/internal/sparse"
)

// Format enumerates the non-opaque data formats of the GraphBLAS 2.0
// import/export API (§VII-A, Table III of the paper). Per §IX, enumeration
// members have pinned values so programs link identically against any
// conforming implementation.
type Format int

const (
	// FormatCSR is compressed sparse row: indptr has nrows+1 entries,
	// indices holds column indices (not required to be sorted within a
	// row), values holds the entries.
	FormatCSR Format = 0
	// FormatCSC is compressed sparse column: indptr has ncols+1 entries,
	// indices holds row indices.
	FormatCSC Format = 1
	// FormatCOO is coordinate format: per Table III, indptr holds each
	// element's COLUMN index, indices holds each element's ROW index, and
	// values the entries; no ordering is required.
	FormatCOO Format = 2
	// FormatDenseRow is dense row-major: values has nrows*ncols entries
	// with element (i,j) at i*ncols+j; indptr and indices are unused.
	FormatDenseRow Format = 3
	// FormatDenseCol is dense column-major: element (i,j) at i+j*nrows.
	FormatDenseCol Format = 4
	// FormatSparseVector stores entry k's index in indices[k] and value in
	// values[k].
	FormatSparseVector Format = 5
	// FormatDenseVector stores element i at values[i]; indices unused.
	FormatDenseVector Format = 6
	// FormatBitmapVector is the bitmap block format (extension, mirroring
	// the internal bitmap storage): values[i] is element i and indices[i]
	// != 0 marks position i as present; both arrays have size entries.
	FormatBitmapVector Format = 7
	// FormatBitmapMatrix is the row-major bitmap block format (extension):
	// values has nrows*ncols entries with element (i,j) at i*ncols+j, and
	// indices, same layout, marks present positions with nonzero flags;
	// indptr is unused.
	FormatBitmapMatrix Format = 8
)

// String returns the spec name of the format.
func (f Format) String() string {
	switch f {
	case FormatCSR:
		return "GrB_CSR_MATRIX"
	case FormatCSC:
		return "GrB_CSC_MATRIX"
	case FormatCOO:
		return "GrB_COO_MATRIX"
	case FormatDenseRow:
		return "GrB_DENSE_ROW_MATRIX"
	case FormatDenseCol:
		return "GrB_DENSE_COL_MATRIX"
	case FormatSparseVector:
		return "GrB_SPARSE_VECTOR"
	case FormatDenseVector:
		return "GrB_DENSE_VECTOR"
	case FormatBitmapVector:
		return "GxB_BITMAP_VECTOR"
	case FormatBitmapMatrix:
		return "GxB_BITMAP_MATRIX"
	}
	return "GrB_Format(?)"
}

func matrixFormat(f Format) bool {
	return (f >= FormatCSR && f <= FormatDenseCol) || f == FormatBitmapMatrix
}

func vectorFormat(f Format) bool {
	return f == FormatSparseVector || f == FormatDenseVector || f == FormatBitmapVector
}

// sortRowPairs sorts a row's (index, value) pairs by index when needed.
func sortRowPairs[T any](ind []int, val []T) {
	sorted := true
	for k := 1; k < len(ind); k++ {
		if ind[k-1] > ind[k] {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	sort.Sort(&rowPairSorter[T]{ind, val})
}

type rowPairSorter[T any] struct {
	ind []int
	val []T
}

func (s *rowPairSorter[T]) Len() int           { return len(s.ind) }
func (s *rowPairSorter[T]) Less(i, j int) bool { return s.ind[i] < s.ind[j] }
func (s *rowPairSorter[T]) Swap(i, j int) {
	s.ind[i], s.ind[j] = s.ind[j], s.ind[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// MatrixImport constructs a new GraphBLAS matrix from external data in one
// of the Table III formats (GrB_Matrix_import). The arrays are copied; the
// caller retains ownership. Duplicate coordinates are invalid. For the
// dense formats indptr and indices may be nil.
func MatrixImport[T any](nrows, ncols Index, indptr, indices []Index, values []T,
	format Format, opts ...ObjOption) (*Matrix[T], error) {
	var cfg objConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctx, err := resolveCtx(cfg.ctx)
	if err != nil {
		return nil, err
	}
	if nrows <= 0 || ncols <= 0 {
		return nil, errf(InvalidValue, "MatrixImport: dimensions must be positive")
	}
	if !matrixFormat(format) {
		return nil, errf(InvalidValue, "MatrixImport: %v is not a matrix format", format)
	}
	var csr *sparse.CSR[T]
	switch format {
	case FormatCSR, FormatCSC:
		byRow := format == FormatCSR
		major, minor := nrows, ncols
		if !byRow {
			major, minor = ncols, nrows
		}
		if len(indptr) != major+1 {
			return nil, errf(InvalidValue, "MatrixImport(%v): indptr must have %d entries, got %d", format, major+1, len(indptr))
		}
		nnz := indptr[major]
		if indptr[0] != 0 || nnz < 0 || len(indices) != nnz || len(values) != nnz {
			return nil, errf(InvalidValue, "MatrixImport(%v): inconsistent indptr/indices/values lengths", format)
		}
		// Validate the whole offset array before any of it is used to slice:
		// nondecreasing with the endpoints pinned to 0 and nnz bounds every
		// group to [0, nnz]. Checking lazily inside the copy loop would slice
		// with an unvalidated upper bound first (indptr = [0, 5, 3] passes
		// the p=0 comparison yet overruns a 3-entry indices array).
		for p := 0; p < major; p++ {
			if indptr[p] > indptr[p+1] {
				return nil, errf(InvalidValue, "MatrixImport(%v): indptr must be nondecreasing", format)
			}
		}
		// Copy the compressed arrays directly; the data is already grouped
		// by major dimension, so only per-group sorting is needed (Table III
		// allows unsorted entries within a row/column).
		t := &sparse.CSR[T]{Rows: major, Cols: minor,
			Ptr: append([]int(nil), indptr...),
			Ind: append([]int(nil), indices...),
			Val: append([]T(nil), values...)}
		for p := 0; p < major; p++ {
			lo, hi := indptr[p], indptr[p+1]
			sortRowPairs(t.Ind[lo:hi], t.Val[lo:hi])
			for k := lo; k < hi; k++ {
				if t.Ind[k] < 0 || t.Ind[k] >= minor {
					return nil, errf(InvalidIndex, "MatrixImport(%v): index %d out of range %d", format, t.Ind[k], minor)
				}
				if k > lo && t.Ind[k] == t.Ind[k-1] {
					return nil, errf(InvalidValue, "MatrixImport(%v): duplicate coordinates", format)
				}
			}
		}
		if byRow {
			csr = t
		} else {
			// The CSC arrays are exactly the CSR arrays of the transpose.
			csr = sparse.Transpose(t)
		}
	case FormatCOO:
		// Table III: indptr holds column indices, indices holds row indices.
		if len(indptr) != len(values) || len(indices) != len(values) {
			return nil, errf(InvalidValue, "MatrixImport(COO): arrays must have equal length")
		}
		for k := range values {
			if indices[k] < 0 || indices[k] >= nrows || indptr[k] < 0 || indptr[k] >= ncols {
				return nil, errf(InvalidIndex, "MatrixImport(COO): coordinate (%d,%d) outside %dx%d", indices[k], indptr[k], nrows, ncols)
			}
		}
		csr, err = sparse.BuildCSR(nrows, ncols, indices, indptr, values, nil)
		if err != nil {
			return nil, errf(InvalidValue, "MatrixImport(COO): %v", err)
		}
	case FormatDenseRow, FormatDenseCol:
		ne, ok := sparse.CheckedMul(nrows, ncols)
		if !ok {
			return nil, errf(OutOfMemory, "MatrixImport(%v): dense size %dx%d overflows the index range", format, nrows, ncols)
		}
		if len(values) != ne {
			return nil, errf(InvalidValue, "MatrixImport(%v): values must have %d entries, got %d", format, ne, len(values))
		}
		csr = &sparse.CSR[T]{Rows: nrows, Cols: ncols,
			Ptr: make([]int, nrows+1),
			Ind: make([]int, 0, len(values)),
			Val: make([]T, 0, len(values))}
		for i := 0; i < nrows; i++ {
			for j := 0; j < ncols; j++ {
				var v T
				if format == FormatDenseRow {
					v = values[i*ncols+j]
				} else {
					v = values[i+j*nrows]
				}
				csr.Ind = append(csr.Ind, j)
				csr.Val = append(csr.Val, v)
			}
			csr.Ptr[i+1] = len(csr.Ind)
		}
	case FormatBitmapMatrix:
		ne, ok := sparse.CheckedMul(nrows, ncols)
		if !ok {
			return nil, errf(OutOfMemory, "MatrixImport(%v): bitmap size %dx%d overflows the index range", format, nrows, ncols)
		}
		if len(values) != ne || len(indices) != ne {
			return nil, errf(InvalidValue, "MatrixImport(%v): indices and values must have %d entries, got %d/%d",
				format, ne, len(indices), len(values))
		}
		csr = &sparse.CSR[T]{Rows: nrows, Cols: ncols, Ptr: make([]int, nrows+1)}
		for i := 0; i < nrows; i++ {
			for j := 0; j < ncols; j++ {
				if indices[i*ncols+j] != 0 {
					csr.Ind = append(csr.Ind, j)
					csr.Val = append(csr.Val, values[i*ncols+j])
				}
			}
			csr.Ptr[i+1] = len(csr.Ind)
		}
	default:
		// Unreachable behind the matrixFormat guard; kept so the switch
		// stays exhaustive as Format grows (§IX pins the enum values).
		return nil, errf(NotImplemented, "MatrixImport: unsupported format %v", format)
	}
	return &Matrix[T]{init: true, ctx: ctx, csr: csr}, nil
}

// MatrixExportSize reports the array lengths a subsequent MatrixExportInto
// needs for the given format (GrB_Matrix_exportSize). The caller allocates
// the arrays however it likes — custom allocator, memory-mapped file — which
// is the reason the API splits sizing from exporting (§VII-A).
func (m *Matrix[T]) MatrixExportSize(format Format) (nindptr, nindices, nvalues Index, err error) {
	if err := m.check(); err != nil {
		return 0, 0, 0, err
	}
	if _, err := m.context(); err != nil {
		return 0, 0, 0, err
	}
	if !matrixFormat(format) {
		return 0, 0, 0, errf(InvalidValue, "MatrixExportSize: %v is not a matrix format", format)
	}
	c, err := m.snapshot()
	if err != nil {
		return 0, 0, 0, err
	}
	switch format {
	case FormatCSR:
		return c.Rows + 1, c.NNZ(), c.NNZ(), nil
	case FormatCSC:
		return c.Cols + 1, c.NNZ(), c.NNZ(), nil
	case FormatCOO:
		return c.NNZ(), c.NNZ(), c.NNZ(), nil
	case FormatBitmapMatrix:
		ne, ok := sparse.CheckedMul(c.Rows, c.Cols)
		if !ok {
			return 0, 0, 0, errf(OutOfMemory, "MatrixExportSize(%v): bitmap size %dx%d overflows the index range", format, c.Rows, c.Cols)
		}
		return 0, ne, ne, nil
	default: // dense
		ne, ok := sparse.CheckedMul(c.Rows, c.Cols)
		if !ok {
			return 0, 0, 0, errf(OutOfMemory, "MatrixExportSize(%v): dense size %dx%d overflows the index range", format, c.Rows, c.Cols)
		}
		return 0, 0, ne, nil
	}
}

// MatrixExportInto exports the matrix into caller-allocated arrays in the
// requested format (GrB_Matrix_export). Arrays must have at least the
// lengths reported by MatrixExportSize; InsufficientSpace is returned
// otherwise. Dense formats fill absent positions with the zero value of T.
func (m *Matrix[T]) MatrixExportInto(format Format, indptr, indices []Index, values []T) error {
	np, ni, nv, err := m.MatrixExportSize(format)
	if err != nil {
		return err
	}
	if len(indptr) < np || len(indices) < ni || len(values) < nv {
		return errf(InsufficientSpace, "MatrixExportInto(%v): need %d/%d/%d, got %d/%d/%d",
			format, np, ni, nv, len(indptr), len(indices), len(values))
	}
	c, err := m.snapshot()
	if err != nil {
		return err
	}
	switch format {
	case FormatCSR:
		copy(indptr, c.Ptr)
		copy(indices, c.Ind)
		copy(values, c.Val)
	case FormatCSC:
		t := sparse.TransposeCached(c) // CSR of the transpose is CSC of the matrix
		copy(indptr, t.Ptr)
		copy(indices, t.Ind)
		copy(values, t.Val)
	case FormatCOO:
		k := 0
		for i := 0; i < c.Rows; i++ {
			ind, val := c.Row(i)
			for p := range ind {
				indices[k] = i     // row index
				indptr[k] = ind[p] // column index, per Table III
				values[k] = val[p]
				k++
			}
		}
	case FormatDenseRow, FormatDenseCol:
		var zero T
		for k := range values[:nv] {
			values[k] = zero
		}
		for i := 0; i < c.Rows; i++ {
			ind, val := c.Row(i)
			for p := range ind {
				if format == FormatDenseRow {
					values[i*c.Cols+ind[p]] = val[p]
				} else {
					values[i+ind[p]*c.Rows] = val[p]
				}
			}
		}
	case FormatBitmapMatrix:
		var zero T
		for k := range values[:nv] {
			values[k] = zero
		}
		for k := range indices[:ni] {
			indices[k] = 0
		}
		for i := 0; i < c.Rows; i++ {
			ind, val := c.Row(i)
			for p := range ind {
				values[i*c.Cols+ind[p]] = val[p]
				indices[i*c.Cols+ind[p]] = 1
			}
		}
	default:
		// Unreachable behind the matrixFormat guard; kept so the switch
		// stays exhaustive as Format grows (§IX pins the enum values).
		return errf(NotImplemented, "MatrixExportInto: unsupported format %v", format)
	}
	return nil
}

// MatrixExport allocates and returns the export arrays (convenience wrapper
// over MatrixExportSize + MatrixExportInto).
func (m *Matrix[T]) MatrixExport(format Format) (indptr, indices []Index, values []T, err error) {
	np, ni, nv, err := m.MatrixExportSize(format)
	if err != nil {
		return nil, nil, nil, err
	}
	indptr = make([]Index, np)
	indices = make([]Index, ni)
	values = make([]T, nv)
	if err := m.MatrixExportInto(format, indptr, indices, values); err != nil {
		return nil, nil, nil, err
	}
	return indptr, indices, values, nil
}

// MatrixExportHint reports the format the implementation can export most
// efficiently (GrB_Matrix_exportHint). This implementation stores matrices
// in CSR, so the hint is always FormatCSR; callers remain free to choose any
// format (§VII-A).
func (m *Matrix[T]) MatrixExportHint() (Format, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if _, err := m.context(); err != nil {
		return 0, err
	}
	return FormatCSR, nil
}

// VectorImport constructs a new GraphBLAS vector from external data
// (GrB_Vector_import). For FormatSparseVector, indices[k] and values[k]
// describe entry k (duplicates invalid); for FormatDenseVector, values[i]
// is element i and indices may be nil.
func VectorImport[T any](size Index, indices []Index, values []T,
	format Format, opts ...ObjOption) (*Vector[T], error) {
	var cfg objConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctx, err := resolveCtx(cfg.ctx)
	if err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, errf(InvalidValue, "VectorImport: size must be positive")
	}
	if !vectorFormat(format) {
		return nil, errf(InvalidValue, "VectorImport: %v is not a vector format", format)
	}
	var vec *sparse.Vec[T]
	switch format {
	case FormatSparseVector:
		if len(indices) != len(values) {
			return nil, errf(InvalidValue, "VectorImport(sparse): indices and values lengths differ")
		}
		vec, err = sparse.BuildVec(size, indices, values, nil)
		if err != nil {
			return nil, errf(InvalidValue, "VectorImport(sparse): %v", err)
		}
	case FormatDenseVector:
		if len(values) != size {
			return nil, errf(InvalidValue, "VectorImport(dense): values must have %d entries, got %d", size, len(values))
		}
		vec = &sparse.Vec[T]{N: size, Ind: make([]int, size), Val: make([]T, size)}
		for i := 0; i < size; i++ {
			vec.Ind[i] = i
			vec.Val[i] = values[i]
		}
	case FormatBitmapVector:
		if len(values) != size || len(indices) != size {
			return nil, errf(InvalidValue, "VectorImport(bitmap): indices and values must have %d entries, got %d/%d",
				size, len(indices), len(values))
		}
		vec = &sparse.Vec[T]{N: size}
		for i := 0; i < size; i++ {
			if indices[i] != 0 {
				vec.Ind = append(vec.Ind, i)
				vec.Val = append(vec.Val, values[i])
			}
		}
	default:
		// Unreachable behind the vectorFormat guard; kept so the switch
		// stays exhaustive as Format grows (§IX pins the enum values).
		return nil, errf(NotImplemented, "VectorImport: unsupported format %v", format)
	}
	return &Vector[T]{init: true, ctx: ctx, vec: vec}, nil
}

// VectorExportSize reports the array lengths VectorExportInto needs
// (GrB_Vector_exportSize).
func (v *Vector[T]) VectorExportSize(format Format) (nindices, nvalues Index, err error) {
	if err := v.check(); err != nil {
		return 0, 0, err
	}
	if _, err := v.context(); err != nil {
		return 0, 0, err
	}
	if !vectorFormat(format) {
		return 0, 0, errf(InvalidValue, "VectorExportSize: %v is not a vector format", format)
	}
	s, err := v.snapshot()
	if err != nil {
		return 0, 0, err
	}
	switch format {
	case FormatSparseVector:
		return s.NNZ(), s.NNZ(), nil
	case FormatBitmapVector:
		return s.N, s.N, nil
	default: // dense
		return 0, s.N, nil
	}
}

// VectorExportInto exports into caller-allocated arrays (GrB_Vector_export).
func (v *Vector[T]) VectorExportInto(format Format, indices []Index, values []T) error {
	ni, nv, err := v.VectorExportSize(format)
	if err != nil {
		return err
	}
	if len(indices) < ni || len(values) < nv {
		return errf(InsufficientSpace, "VectorExportInto(%v): need %d/%d, got %d/%d",
			format, ni, nv, len(indices), len(values))
	}
	s, err := v.snapshot()
	if err != nil {
		return err
	}
	if format == FormatSparseVector {
		copy(indices, s.Ind)
		copy(values, s.Val)
		return nil
	}
	var zero T
	for i := range values[:nv] {
		values[i] = zero
	}
	if format == FormatBitmapVector {
		for i := range indices[:ni] {
			indices[i] = 0
		}
		for k, i := range s.Ind {
			values[i] = s.Val[k]
			indices[i] = 1
		}
		return nil
	}
	for k, i := range s.Ind {
		values[i] = s.Val[k]
	}
	return nil
}

// VectorExport allocates and returns the export arrays.
func (v *Vector[T]) VectorExport(format Format) (indices []Index, values []T, err error) {
	ni, nv, err := v.VectorExportSize(format)
	if err != nil {
		return nil, nil, err
	}
	indices = make([]Index, ni)
	values = make([]T, nv)
	if err := v.VectorExportInto(format, indices, values); err != nil {
		return nil, nil, err
	}
	return indices, values, nil
}

// VectorExportHint reports the most efficient export format
// (GrB_Vector_exportHint); always FormatSparseVector here.
func (v *Vector[T]) VectorExportHint() (Format, error) {
	if err := v.check(); err != nil {
		return 0, err
	}
	if _, err := v.context(); err != nil {
		return 0, err
	}
	return FormatSparseVector, nil
}

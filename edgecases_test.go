package grb

import "testing"

// Edge-shape and empty-operand coverage for the public operations.

func TestEmptyOperandProducts(t *testing.T) {
	setMode(t, Blocking)
	empty := mustMatrix(t, 4, 4, nil, nil, []int(nil))
	full := mustMatrix(t, 4, 4, []Index{0, 1, 2, 3}, []Index{1, 2, 3, 0}, []int{1, 2, 3, 4})
	c := ck1(NewMatrix[int](4, 4))
	if err := MxM(c, nil, nil, PlusTimes[int](), empty, full, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(c.Nvals()); nv != 0 {
		t.Fatalf("empty·full = %d entries", nv)
	}
	if err := MxM(c, nil, nil, PlusTimes[int](), full, empty, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(c.Nvals()); nv != 0 {
		t.Fatal("full·empty not empty")
	}
	// empty ewise
	if err := EWiseAddMatrix(c, nil, nil, Plus[int], empty, empty, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(c.Nvals()); nv != 0 {
		t.Fatal("empty⊕empty not empty")
	}
	if err := EWiseAddMatrix(c, nil, nil, Plus[int], full, empty, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(c.Nvals()); nv != 4 {
		t.Fatal("full⊕empty should equal full")
	}
	// empty reduce / select / transpose
	w := ck1(NewVector[int](4))
	if err := MatrixReduceToVector(w, nil, nil, PlusMonoid[int](), empty, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(w.Nvals()); nv != 0 {
		t.Fatal("reduce of empty not empty")
	}
	if err := MatrixSelect(c, nil, nil, TriL[int], empty, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := Transpose(c, nil, nil, empty, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOneByOneAndVectorShapes(t *testing.T) {
	setMode(t, Blocking)
	// 1×1 matrices behave.
	a := mustMatrix(t, 1, 1, []Index{0}, []Index{0}, []int{3})
	c := ck1(NewMatrix[int](1, 1))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(c.ExtractElement(0, 0)); v != 9 {
		t.Fatalf("1x1 product = %d", v)
	}
	// Tall-thin times wide-short.
	tall := mustMatrix(t, 5, 1, []Index{0, 4}, []Index{0, 0}, []int{1, 2})
	wide := mustMatrix(t, 1, 5, []Index{0, 0}, []Index{0, 4}, []int{3, 4})
	outer := ck1(NewMatrix[int](5, 5))
	if err := MxM(outer, nil, nil, PlusTimes[int](), tall, wide, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(outer.Nvals()); nv != 4 {
		t.Fatalf("outer product entries = %d, want 4", nv)
	}
	if v, _ := ck2(outer.ExtractElement(4, 4)); v != 8 {
		t.Fatalf("outer(4,4) = %d", v)
	}
	inner := ck1(NewMatrix[int](1, 1))
	if err := MxM(inner, nil, nil, PlusTimes[int](), wide, tall, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(inner.ExtractElement(0, 0)); v != 11 { // 3*1 + 4*2
		t.Fatalf("inner product = %d", v)
	}
	// size-1 vector
	v1 := ck1(NewVector[int](1))
	if err := v1.SetElement(5, 0); err != nil {
		t.Fatal(err)
	}
	w := ck1(NewVector[int](5))
	if err := MxV(w, nil, nil, PlusTimes[int](), tall, v1, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{0, 4}, []int{5, 10})
}

// TestDenseOperands exercises fully dense matrices through the sparse
// engine (worst-case fill).
func TestDenseOperands(t *testing.T) {
	setMode(t, Blocking)
	const n = 8
	var I, J []Index
	var X []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			I = append(I, i)
			J = append(J, j)
			X = append(X, 1)
		}
	}
	a := mustMatrix(t, n, n, I, J, X)
	c := ck1(NewMatrix[int](n, n))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	// all-ones squared: every entry is n
	nv := ck1(c.Nvals())
	if nv != n*n {
		t.Fatalf("dense product nvals = %d", nv)
	}
	if v, _ := ck2(c.ExtractElement(3, 5)); v != n {
		t.Fatalf("dense product value = %d", v)
	}
	sum := ck1(MatrixReduce(PlusMonoid[int](), c))
	if sum != n*n*n {
		t.Fatalf("dense sum = %d", sum)
	}
}

// TestSelfOperandAliasing: using the same object as output and input(s) is
// well-defined thanks to snapshotting (C = C·C etc.).
func TestSelfOperandAliasing(t *testing.T) {
	for _, mode := range []Mode{Blocking, NonBlocking} {
		t.Run(mode.String(), func(t *testing.T) {
			setMode(t, mode)
			// permutation matrix: squaring shifts by 2
			c := mustMatrix(t, 4, 4,
				[]Index{0, 1, 2, 3}, []Index{1, 2, 3, 0}, []int{1, 1, 1, 1})
			if err := MxM(c, nil, nil, PlusTimes[int](), c, c, nil); err != nil {
				t.Fatal(err)
			}
			if v, ok := ck2(c.ExtractElement(0, 2)); !ok || v != 1 {
				t.Fatalf("C=C·C wrong: (0,2)=%d,%v", v, ok)
			}
			// w = w ⊕ w doubles values
			w := mustVector(t, 3, []Index{0, 2}, []int{1, 5})
			if err := EWiseAddVector(w, nil, nil, Plus[int], w, w, nil); err != nil {
				t.Fatal(err)
			}
			vectorEquals(t, w, []Index{0, 2}, []int{2, 10})
			// m as its own mask
			mb := mustMatrix(t, 2, 2, []Index{0}, []Index{0}, []bool{true})
			if err := MatrixApply(mb, mb, nil, LNot, mb, DescS); err != nil {
				t.Fatal(err)
			}
			if v, _ := ck2(mb.ExtractElement(0, 0)); v != false {
				t.Fatal("self-mask apply wrong")
			}
		})
	}
}

// TestAllIndicesAliases: grb.All (nil) behaves as the full index range in
// extract and assign.
func TestAllIndicesAliases(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 3, 3, []Index{0, 1, 2}, []Index{2, 1, 0}, []int{1, 2, 3})
	c := ck1(NewMatrix[int](3, 3))
	if err := MatrixExtract(c, nil, nil, a, All, All, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1, 2}, []Index{2, 1, 0}, []int{1, 2, 3})
	// assign with All == full overwrite
	d := mustMatrix(t, 3, 3, []Index{0}, []Index{0}, []int{99})
	if err := MatrixAssign(d, nil, nil, a, All, All, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, d, []Index{0, 1, 2}, []Index{2, 1, 0}, []int{1, 2, 3})
}
